// Command adaptivetc-chaos runs seeded fault-injection soak campaigns
// against the scheduling engines, the resident pool, and the deterministic
// cluster model, and reports a per-fault verdict table. Every case is
// identified by a replay tuple
//
//	<mode>/w<workers>/<engine>/<program>/<scenario>/<seed>     (sim, pool)
//	cluster/n<nodes>/<engine>/<program>/<scenario>/<seed>      (cluster)
//
// printed whenever the case fails; `adaptivetc-chaos -replay <tuple>` runs
// exactly that case again (twice, on Sim, verifying the two runs are
// byte-identical), so any chaos failure is a one-line regression.
//
// Cluster campaigns soak the network-fault scenarios (drop, delay,
// duplication, partition) against an N-node Sim cluster: every case runs
// twice and the two event logs must be byte-identical, every job must
// complete with the serial oracle's value, and the model's conservation
// invariants must hold.
//
// Usage:
//
//	adaptivetc-chaos -duration 20s                      # full soak
//	adaptivetc-chaos -mode sim -scenarios panic,stall   # targeted
//	adaptivetc-chaos -mode cluster -scenarios net-drop,partition
//	adaptivetc-chaos -replay sim/w4/adaptivetc/nqueens-array=6/steal-burst/7
//	adaptivetc-chaos -replay cluster/n3/adaptivetc/fib=14/net-mixed/7
//
// Verdicts per case: "completed" runs must produce the serial oracle's
// value and an invariant-clean trace (trace.Recorder.Check); "aborted"
// runs — injected panic, forced overflow, deadline — must surface a known
// abort class and a truncation-clean trace (CheckTruncated); "rejected"
// submissions must surface ErrQueueFull. Anything else (wrong value,
// invariant violation, unexpected panic class, leaked goroutines) fails
// the process with exit status 1.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"adaptivetc/internal/cilk"
	"adaptivetc/internal/cluster"
	"adaptivetc/internal/core"
	"adaptivetc/internal/cutoff"
	"adaptivetc/internal/faults"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/slaw"
	"adaptivetc/internal/trace"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/registry"
)

// chaosEngine is the intersection the campaigns need: batch Run for Sim
// cases and NewExec for resident-pool jobs.
type chaosEngine interface {
	Name() string
	Run(sched.Program, sched.Options) (sched.Result, error)
	NewExec(int, sched.Options) wsrt.Engine
}

var engineMakers = map[string]func() chaosEngine{
	"adaptivetc":        func() chaosEngine { return core.New() },
	"cilk":              func() chaosEngine { return cilk.New() },
	"cilk-synched":      func() chaosEngine { return cilk.NewSynched() },
	"cutoff-programmer": func() chaosEngine { return cutoff.NewProgrammer() },
	"cutoff-library":    func() chaosEngine { return cutoff.NewLibrary() },
	"helpfirst":         func() chaosEngine { return slaw.NewHelpFirst() },
	"slaw":              func() chaosEngine { return slaw.New() },
}

func engineNames() []string {
	return []string{"adaptivetc", "cilk", "cilk-synched", "cutoff-programmer",
		"cutoff-library", "helpfirst", "slaw"}
}

// progSpec is one "name=N" program instance.
type progSpec struct {
	name string
	n    int
}

func (p progSpec) String() string {
	if p.n == 0 {
		return p.name
	}
	return fmt.Sprintf("%s=%d", p.name, p.n)
}

func (p progSpec) build() (sched.Program, error) {
	return registry.Build(p.name, registry.Params{N: p.n})
}

func parsePrograms(csv string) ([]progSpec, error) {
	var out []progSpec
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ps := progSpec{name: part}
		if name, nStr, ok := strings.Cut(part, "="); ok {
			n, err := strconv.Atoi(nStr)
			if err != nil {
				return nil, fmt.Errorf("bad program %q: %v", part, err)
			}
			ps = progSpec{name: name, n: n}
		}
		if _, err := ps.build(); err != nil {
			return nil, err
		}
		out = append(out, ps)
	}
	if len(out) == 0 {
		return nil, errors.New("no programs")
	}
	return out, nil
}

// caseSpec identifies one chaos case; its tuple is the replay handle. In
// cluster mode, workers holds the node count and the tuple renders it as
// n<N> rather than w<N>.
type caseSpec struct {
	mode     string // "sim", "pool" or "cluster"
	workers  int
	engine   string
	prog     progSpec
	scenario string
	seed     int64
}

func (c caseSpec) tuple() string {
	w := fmt.Sprintf("w%d", c.workers)
	if c.mode == "cluster" {
		w = fmt.Sprintf("n%d", c.workers)
	}
	return fmt.Sprintf("%s/%s/%s/%s/%s/%d", c.mode, w, c.engine, c.prog, c.scenario, c.seed)
}

func parseTuple(s string) (caseSpec, error) {
	parts := strings.Split(strings.TrimSpace(s), "/")
	if len(parts) != 6 {
		return caseSpec{}, fmt.Errorf("replay tuple needs 6 '/'-separated fields, got %q", s)
	}
	var c caseSpec
	c.mode = parts[0]
	prefix := "w"
	switch c.mode {
	case "sim", "pool":
	case "cluster":
		prefix = "n"
	default:
		return c, fmt.Errorf("replay mode must be sim, pool or cluster, got %q", c.mode)
	}
	w, err := strconv.Atoi(strings.TrimPrefix(parts[1], prefix))
	if err != nil || w <= 0 {
		return c, fmt.Errorf("bad %s field %q", map[string]string{"w": "worker", "n": "node"}[prefix], parts[1])
	}
	c.workers = w
	c.engine = parts[2]
	if _, ok := engineMakers[c.engine]; !ok {
		return c, fmt.Errorf("unknown engine %q", c.engine)
	}
	progs, err := parsePrograms(parts[3])
	if err != nil {
		return c, err
	}
	c.prog = progs[0]
	c.scenario = parts[4]
	if _, err := faults.Scenario(c.scenario, 1); err != nil {
		return c, err
	}
	c.seed, err = strconv.ParseInt(parts[5], 10, 64)
	if err != nil {
		return c, fmt.Errorf("bad seed %q", parts[5])
	}
	return c, nil
}

// verdict is one case's outcome. err non-nil means the case FAILED (wrong
// value, invariant violation, unexpected panic, leak); class records how
// the run ended for the per-fault table.
type verdict struct {
	c     caseSpec
	class string // "completed", "aborted", "rejected"
	err   error
}

// oracles caches the serial reference value per program instance.
type oracles struct{ m map[string]int64 }

func (o *oracles) value(p progSpec) (int64, error) {
	if o.m == nil {
		o.m = map[string]int64{}
	}
	if v, ok := o.m[p.String()]; ok {
		return v, nil
	}
	prog, err := p.build()
	if err != nil {
		return 0, err
	}
	res, err := sched.Serial{}.Run(prog, sched.Options{})
	if err != nil {
		return 0, err
	}
	o.m[p.String()] = res.Value
	return res.Value, nil
}

// knownAbort reports whether err is an abort class chaos is allowed to
// surface: injected/organic overflow, injected/organic panic quarantine,
// deadline or cancellation, pool shutdown.
func knownAbort(err error) bool {
	return errors.Is(err, sched.ErrDequeOverflow) ||
		errors.Is(err, wsrt.ErrJobPanicked) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, wsrt.ErrPoolClosed)
}

// simOutcome captures everything observable about one Sim case, for the
// byte-identical replay comparison.
type simOutcome struct {
	Value   int64
	Err     string
	Workers [][]trace.Event
	Deques  [][]trace.DequeEvent
}

// runSim executes one case on the Sim platform with a fresh recorder and
// returns its verdict plus the full observable outcome. A panic escaping
// the batch runtime (the injected program-panic fault propagates on batch
// runs by design) is recovered here and classified.
func runSim(c caseSpec, orc *oracles) (verdict, *simOutcome) {
	v := verdict{c: c}
	prog, err := c.prog.build()
	if err != nil {
		v.err = err
		return v, nil
	}
	want, err := orc.value(c.prog)
	if err != nil {
		v.err = fmt.Errorf("serial oracle: %w", err)
		return v, nil
	}
	spec, err := faults.Scenario(c.scenario, c.seed)
	if err != nil {
		v.err = err
		return v, nil
	}
	rec := trace.NewRecorder()
	defer rec.Release()
	opt := sched.Options{
		Workers: c.workers,
		Seed:    c.seed,
		Tracer:  rec,
		Faults:  faults.New(spec),
	}
	res, runErr := func() (res sched.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(faults.PanicValue); ok {
					err = fmt.Errorf("%w: %v", wsrt.ErrJobPanicked, r)
					return
				}
				err = fmt.Errorf("unexpected panic class: %v", r)
			}
		}()
		return engineMakers[c.engine]().Run(prog, opt)
	}()

	out := &simOutcome{Value: res.Value}
	if runErr != nil {
		out.Err = runErr.Error()
	}
	for i := 0; i < rec.Workers(); i++ {
		out.Workers = append(out.Workers, append([]trace.Event(nil), rec.WorkerLog(i).Events()...))
		out.Deques = append(out.Deques, append([]trace.DequeEvent(nil), rec.DequeLog(i).Events()...))
	}

	switch {
	case runErr == nil:
		v.class = "completed"
		if res.Value != want {
			v.err = fmt.Errorf("wrong value: got %d, serial oracle %d", res.Value, want)
		} else if cerr := rec.Check(res.Value, want); cerr != nil {
			v.err = fmt.Errorf("invariant violation: %w", cerr)
		}
	case knownAbort(runErr):
		v.class = "aborted"
		if cerr := rec.CheckTruncated(); cerr != nil {
			v.err = fmt.Errorf("invariant violation in aborted run (%v): %w", runErr, cerr)
		}
	default:
		v.class = "aborted"
		v.err = fmt.Errorf("unknown abort class: %w", runErr)
	}
	return v, out
}

// runPoolCampaign drives one scenario against a sharded resident pool:
// the scenario's plan injects at both levels (admission/shard starvation on
// the pool, worker/deque faults per job). Every job gets its own recorder
// and a safety deadline so a wedge surfaces as an abort, not a hang.
func runPoolCampaign(scenario string, seed int64, engines []string, programs []progSpec,
	workers, jobs int, orc *oracles) []verdict {
	spec, err := faults.Scenario(scenario, seed)
	if err != nil {
		return []verdict{{c: caseSpec{mode: "pool", scenario: scenario, seed: seed}, err: err}}
	}
	plan := faults.New(spec)
	maxJobs := 2
	if workers < 2 {
		maxJobs = 1
	}
	pool := wsrt.NewPool(wsrt.PoolConfig{
		Workers:           workers,
		MaxConcurrentJobs: maxJobs,
		ShardPolicy:       wsrt.ShardAdaptive,
		Options:           sched.Options{Seed: seed},
		Faults:            plan,
	})

	type inflight struct {
		c   caseSpec
		h   *wsrt.JobHandle
		rec *trace.Recorder
	}
	var verdicts []verdict
	var running []inflight
	for i := 0; i < jobs; i++ {
		c := caseSpec{
			mode:     "pool",
			workers:  workers,
			engine:   engines[i%len(engines)],
			prog:     programs[i%len(programs)],
			scenario: scenario,
			seed:     seed + int64(i),
		}
		prog, err := c.prog.build()
		if err != nil {
			verdicts = append(verdicts, verdict{c: c, err: err})
			continue
		}
		rec := trace.NewRecorder()
		h, err := pool.Submit(wsrt.JobSpec{
			Prog:   prog,
			Engine: engineMakers[c.engine](),
			Tracer: rec,
			Faults: faults.New(faults.Spec{Seed: c.seed, StealFail: spec.StealFail,
				StealFailBurst: spec.StealFailBurst, Stall: spec.Stall, StallNS: spec.StallNS,
				DepositDelay: spec.DepositDelay, DepositDelayNS: spec.DepositDelayNS,
				Panic: spec.Panic, Overflow: spec.Overflow}),
			Deadline: 10 * time.Second,
		})
		if err != nil {
			rec.Release()
			v := verdict{c: c, class: "rejected"}
			if !errors.Is(err, wsrt.ErrQueueFull) && !errors.Is(err, wsrt.ErrPoolClosed) {
				v.err = fmt.Errorf("unknown rejection class: %w", err)
			}
			verdicts = append(verdicts, v)
			continue
		}
		running = append(running, inflight{c: c, h: h, rec: rec})
	}
	for _, f := range running {
		res, runErr := f.h.Result()
		v := verdict{c: f.c}
		want, oerr := orc.value(f.c.prog)
		switch {
		case oerr != nil:
			v.err = fmt.Errorf("serial oracle: %w", oerr)
		case runErr == nil:
			v.class = "completed"
			if res.Value != want {
				v.err = fmt.Errorf("wrong value: got %d, serial oracle %d", res.Value, want)
			} else if cerr := f.rec.Check(res.Value, want); cerr != nil {
				v.err = fmt.Errorf("invariant violation: %w", cerr)
			}
		case knownAbort(runErr):
			v.class = "aborted"
			if cerr := f.rec.CheckTruncated(); cerr != nil {
				v.err = fmt.Errorf("invariant violation in aborted job (%v): %w", runErr, cerr)
			}
		default:
			v.class = "aborted"
			v.err = fmt.Errorf("unknown abort class: %w", runErr)
		}
		f.rec.Release()
		verdicts = append(verdicts, v)
	}
	pool.Close()
	return verdicts
}

// clusterCosts memoizes the (service time, value) a program instance
// contributes to a cluster case: one deterministic Sim-platform engine run
// supplies the virtual makespan and the result, checked against the serial
// oracle. RunSim's jobs carry these as plain numbers, so the cluster model
// never re-executes the program.
type clusterCosts struct{ m map[string]costEntry }

type costEntry struct{ svcNS, value int64 }

func (cc *clusterCosts) get(engine string, p progSpec, orc *oracles) (costEntry, error) {
	if cc.m == nil {
		cc.m = map[string]costEntry{}
	}
	key := engine + "/" + p.String()
	if e, ok := cc.m[key]; ok {
		return e, nil
	}
	prog, err := p.build()
	if err != nil {
		return costEntry{}, err
	}
	res, err := engineMakers[engine]().Run(prog, sched.Options{Workers: 2, Seed: 42})
	if err != nil {
		return costEntry{}, fmt.Errorf("cluster cost run: %w", err)
	}
	want, err := orc.value(p)
	if err != nil {
		return costEntry{}, fmt.Errorf("serial oracle: %w", err)
	}
	if res.Value != want {
		return costEntry{}, fmt.Errorf("cluster cost run: %s/%s value %d != serial oracle %d",
			engine, p, res.Value, want)
	}
	e := costEntry{svcNS: int64(res.Makespan), value: res.Value}
	if e.svcNS <= 0 {
		e.svcNS = 1_000_000
	}
	cc.m[key] = e
	return e, nil
}

// clusterJobs builds the skewed deterministic job set for one cluster
// case: 80% of arrivals land on node 0, the rest round-robin over the
// colder nodes, and the aggregate arrival rate is 4 jobs per service time
// — well past one node's capacity, so forwarding and stealing must fire
// for the run to finish in bounded virtual time.
func clusterJobs(nodes, count int, e costEntry) []cluster.SimJob {
	jobs := make([]cluster.SimJob, count)
	for i := range jobs {
		node := 0
		if i%5 == 4 && nodes > 1 {
			node = 1 + (i/5)%(nodes-1)
		}
		jobs[i] = cluster.SimJob{
			ID:        i,
			Node:      node,
			ArriveNS:  int64(i) * e.svcNS / 4,
			ServiceNS: e.svcNS,
			Value:     e.value,
		}
	}
	return jobs
}

// runCluster executes one cluster case twice and verifies the two event
// logs are byte-identical — so every soak case doubles as a replay check
// — then applies the contract: zero invariant violations, every job
// completed, every first completion carrying the oracle value.
func runCluster(c caseSpec, orc *oracles, costs *clusterCosts) (verdict, *cluster.SimReport) {
	v := verdict{c: c}
	spec, err := faults.Scenario(c.scenario, c.seed)
	if err != nil {
		v.err = err
		return v, nil
	}
	e, err := costs.get(c.engine, c.prog, orc)
	if err != nil {
		v.err = err
		return v, nil
	}
	jobs := clusterJobs(c.workers, 24, e)
	run := func() (*cluster.SimReport, error) {
		// Fresh Plan per run: the fault streams are stateful. Network
		// timing scales with the service time so gossip, forwarding and
		// stealing actually fire within the workload's virtual lifetime —
		// engine makespans span orders of magnitude across programs.
		return cluster.RunSim(cluster.SimConfig{
			Nodes:         c.workers,
			Seed:          c.seed,
			BaseLatencyNS: e.svcNS/16 + 1,
			JitterNS:      e.svcNS/64 + 1,
			GossipEveryNS: e.svcNS/2 + 1,
			Faults:        faults.New(spec),
		}, jobs)
	}
	rep1, err1 := run()
	rep2, err2 := run()
	if err1 != nil || err2 != nil {
		v.err = errors.Join(err1, err2)
		return v, rep1
	}
	v.class = "completed"
	switch {
	case !reflect.DeepEqual(rep1.Events, rep2.Events):
		v.err = fmt.Errorf("replay diverged: %d vs %d events", len(rep1.Events), len(rep2.Events))
	case len(rep1.Violations) > 0:
		v.err = fmt.Errorf("invariant violation: %s", strings.Join(rep1.Violations, "; "))
	case rep1.Completed != len(jobs):
		v.err = fmt.Errorf("%d of %d jobs completed", rep1.Completed, len(jobs))
	default:
		for id, got := range rep1.Values {
			if got != e.value {
				v.err = fmt.Errorf("job %d: wrong value %d, serial oracle %d", id, got, e.value)
				break
			}
		}
	}
	return v, rep1
}

// benchSide is one arm of the forwarding on/off comparison, in virtual
// time (the Sim clock, not wall clock).
type benchSide struct {
	Completed    int     `json:"completed"`
	Duplicates   int     `json:"duplicates"`
	ForwardedIn  int     `json:"forwarded_in"`
	StealsServed int     `json:"steals_served"`
	P50Ms        float64 `json:"p50_ms_virtual"`
	P90Ms        float64 `json:"p90_ms_virtual"`
	P99Ms        float64 `json:"p99_ms_virtual"`
	MakespanMs   float64 `json:"makespan_ms_virtual"`
	PerNodeDone  []int   `json:"per_node_completed"`
}

// benchCluster runs the BENCH_cluster.json experiment: a 2-node Sim
// cluster under 80/20-skewed load at 1.6 jobs per service time — past the
// hot node's capacity on its own, comfortably inside the pair's — with the
// forward/steal plane on vs off (threshold pushed out of reach), and
// prints the virtual-time sojourn comparison as JSON. Deterministic: the
// same seed reproduces the same report byte for byte.
func benchCluster(seed int64, orc *oracles, costs *clusterCosts) int {
	p := progSpec{name: "fib", n: 14}
	e, err := costs.get("adaptivetc", p, orc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptivetc-chaos: %v\n", err)
		return 1
	}
	const count = 200
	jobs := make([]cluster.SimJob, count)
	for i := range jobs {
		node := 0
		if i%5 == 4 {
			node = 1
		}
		jobs[i] = cluster.SimJob{
			ID: i, Node: node,
			ArriveNS:  int64(i) * e.svcNS * 5 / 8, // aggregate 1.6 jobs per service time
			ServiceNS: e.svcNS,
			Value:     e.value,
		}
	}
	run := func(forwarding bool) (*benchSide, error) {
		cfg := cluster.SimConfig{
			Nodes: 2, Seed: seed,
			BaseLatencyNS: e.svcNS/16 + 1,
			JitterNS:      e.svcNS/64 + 1,
			GossipEveryNS: e.svcNS/2 + 1,
		}
		if !forwarding {
			// Gap and victim-load thresholds no backlog can reach: the
			// nodes still gossip, but never shed or steal.
			cfg.ForwardThreshold = 1 << 30
			cfg.StealMinScore = 1 << 30
		}
		rep, err := cluster.RunSim(cfg, jobs)
		if err != nil {
			return nil, err
		}
		if len(rep.Violations) > 0 {
			return nil, fmt.Errorf("violations: %s", strings.Join(rep.Violations, "; "))
		}
		if rep.Completed != count {
			return nil, fmt.Errorf("%d of %d jobs completed", rep.Completed, count)
		}
		soj := make([]int64, 0, count)
		for _, s := range rep.SojournNS {
			soj = append(soj, s)
		}
		sort.Slice(soj, func(i, j int) bool { return soj[i] < soj[j] })
		pct := func(q float64) float64 {
			idx := int(q*float64(len(soj))+0.5) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(soj) {
				idx = len(soj) - 1
			}
			return float64(soj[idx]) / 1e6
		}
		side := &benchSide{
			Completed:  rep.Completed,
			Duplicates: rep.Duplicates,
			P50Ms:      pct(0.50),
			P90Ms:      pct(0.90),
			P99Ms:      pct(0.99),
			MakespanMs: float64(rep.MakespanNS) / 1e6,
		}
		for _, st := range rep.PerNode {
			side.ForwardedIn += st.ForwardedIn
			side.StealsServed += st.StealsServed
			side.PerNodeDone = append(side.PerNodeDone, st.Completed)
		}
		return side, nil
	}
	on, err := run(true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptivetc-chaos: forwarding on: %v\n", err)
		return 1
	}
	off, err := run(false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptivetc-chaos: forwarding off: %v\n", err)
		return 1
	}
	out := struct {
		Description string     `json:"description"`
		Engine      string     `json:"engine"`
		Program     string     `json:"program"`
		ServiceNS   int64      `json:"service_ns_virtual"`
		Nodes       int        `json:"nodes"`
		Jobs        int        `json:"jobs"`
		Skew        string     `json:"skew"`
		ArrivalRate float64    `json:"arrival_rate_per_service_time"`
		Seed        int64      `json:"seed"`
		On          *benchSide `json:"forwarding_on"`
		Off         *benchSide `json:"forwarding_off"`
		Improvement float64    `json:"p99_improvement_pct"`
	}{
		Description: "Deterministic 2-node Sim cluster, 80/20 skewed arrivals at 1.6 jobs " +
			"per service time: the hot node is overloaded alone, the pair is not. " +
			"Sojourn percentiles in virtual milliseconds, forward/steal plane on vs off. " +
			"Regenerate with: adaptivetc-chaos -cluster-bench -seed 20100424",
		Engine: "adaptivetc", Program: p.String(), ServiceNS: e.svcNS,
		Nodes: 2, Jobs: count, Skew: "80/20", ArrivalRate: 1.6, Seed: seed,
		On: on, Off: off,
		Improvement: 100 * (off.P99Ms - on.P99Ms) / off.P99Ms,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "adaptivetc-chaos: %v\n", err)
		return 1
	}
	if out.Improvement < 20 {
		fmt.Fprintf(os.Stderr, "adaptivetc-chaos: p99 improvement %.1f%% below the 20%% bar\n", out.Improvement)
		return 1
	}
	return 0
}

// replay runs one Sim case twice and verifies the runs are byte-identical:
// same value, same error, same per-worker event streams, same per-deque
// FSM transitions. Pool tuples replay as a single-job campaign (outcomes
// on the Real platform are seed-reproducible per stream but interleavings
// are not byte-comparable, so only the verdict is checked).
func replay(c caseSpec, orc *oracles) int {
	if c.mode == "cluster" {
		v, rep := runCluster(c, orc, &clusterCosts{})
		fmt.Printf("%s: %s\n", c.tuple(), verdictString(v))
		if rep != nil && v.err == nil {
			fmt.Printf("replayed byte-identically: %d jobs completed, %d duplicates, %d events, makespan %.2fms virtual\n",
				rep.Completed, rep.Duplicates, len(rep.Events), float64(rep.MakespanNS)/1e6)
		}
		if v.err != nil {
			return 1
		}
		return 0
	}
	if c.mode == "pool" {
		vs := runPoolCampaign(c.scenario, c.seed, []string{c.engine}, []progSpec{c.prog}, c.workers, 1, orc)
		bad := 0
		for _, v := range vs {
			fmt.Printf("%s: %s\n", v.c.tuple(), verdictString(v))
			if v.err != nil {
				bad++
			}
		}
		if bad > 0 {
			return 1
		}
		return 0
	}
	v1, o1 := runSim(c, orc)
	v2, o2 := runSim(c, orc)
	fmt.Printf("%s: %s\n", c.tuple(), verdictString(v1))
	if !reflect.DeepEqual(o1, o2) {
		fmt.Printf("REPLAY DIVERGED: two runs of %s produced different schedules\n", c.tuple())
		return 1
	}
	fmt.Printf("replayed byte-identically: value=%d err=%q events=%d\n",
		o1.Value, o1.Err, countEvents(o1))
	if v1.err != nil || v2.err != nil {
		return 1
	}
	return 0
}

func countEvents(o *simOutcome) int {
	n := 0
	for _, evs := range o.Workers {
		n += len(evs)
	}
	return n
}

func verdictString(v verdict) string {
	if v.err != nil {
		return fmt.Sprintf("FAIL (%s): %v", v.class, v.err)
	}
	return v.class
}

func main() {
	seed := flag.Int64("seed", 20100424, "master seed; every case seed derives from it")
	duration := flag.Duration("duration", 20*time.Second, "soak budget")
	mode := flag.String("mode", "all", "campaign mode: sim, pool, cluster, or all")
	workers := flag.Int("workers", 4, "workers per case (pool size in pool mode)")
	jobs := flag.Int("jobs", 16, "jobs per pool campaign")
	enginesCSV := flag.String("engines", strings.Join(engineNames(), ","), "engines to soak")
	programsCSV := flag.String("programs", "nqueens-array=6,fib=14,knight=4,dag-layered=4,bnb-knapsack=12", "programs (name or name=N)")
	scenariosCSV := flag.String("scenarios", strings.Join(faults.Scenarios(), ","), "fault scenarios")
	replayTuple := flag.String("replay", "", "replay one case tuple and exit")
	clusterBench := flag.Bool("cluster-bench", false, "run the forwarding on/off latency comparison and print JSON")
	verbose := flag.Bool("v", false, "print every case verdict")
	flag.Parse()

	orc := &oracles{}
	costs := &clusterCosts{}
	if *replayTuple != "" {
		c, err := parseTuple(*replayTuple)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptivetc-chaos: %v\n", err)
			os.Exit(2)
		}
		os.Exit(replay(c, orc))
	}
	if *clusterBench {
		os.Exit(benchCluster(*seed, orc, costs))
	}

	programs, err := parsePrograms(*programsCSV)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptivetc-chaos: %v\n", err)
		os.Exit(2)
	}
	var engines []string
	for _, e := range strings.Split(*enginesCSV, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if _, ok := engineMakers[e]; !ok {
			fmt.Fprintf(os.Stderr, "adaptivetc-chaos: unknown engine %q\n", e)
			os.Exit(2)
		}
		engines = append(engines, e)
	}
	var scenarios []string
	for _, s := range strings.Split(*scenariosCSV, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if _, err := faults.Scenario(s, 1); err != nil {
			fmt.Fprintf(os.Stderr, "adaptivetc-chaos: %v\n", err)
			os.Exit(2)
		}
		scenarios = append(scenarios, s)
	}

	baseGoroutines := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(*seed))
	deadline := time.Now().Add(*duration)

	// tally[scenario][class] plus failures collected globally.
	tally := map[string]map[string]int{}
	var failures []verdict
	record := func(v verdict) {
		if tally[v.c.scenario] == nil {
			tally[v.c.scenario] = map[string]int{}
		}
		key := v.class
		if v.err != nil {
			key = "FAILED"
			failures = append(failures, v)
			fmt.Printf("FAIL %s: %v\n", v.c.tuple(), v.err)
			fmt.Printf("  replay with: adaptivetc-chaos -replay %s\n", v.c.tuple())
		} else if *verbose {
			fmt.Printf("ok   %s: %s\n", v.c.tuple(), v.class)
		}
		tally[v.c.scenario][key]++
	}

	cases := 0
	for round := 0; time.Now().Before(deadline); round++ {
		for _, scen := range scenarios {
			if !time.Now().Before(deadline) {
				break
			}
			if *mode == "sim" || *mode == "all" {
				c := caseSpec{
					mode:     "sim",
					workers:  *workers,
					engine:   engines[rng.Intn(len(engines))],
					prog:     programs[rng.Intn(len(programs))],
					scenario: scen,
					seed:     rng.Int63n(1 << 30),
				}
				v, _ := runSim(c, orc)
				record(v)
				cases++
			}
			if *mode == "pool" || *mode == "all" {
				campaignSeed := rng.Int63n(1 << 30)
				for _, v := range runPoolCampaign(scen, campaignSeed, engines, programs, *workers, *jobs, orc) {
					record(v)
					cases++
				}
			}
			if *mode == "cluster" || *mode == "all" {
				// Cluster cases only make sense for scenarios with network
				// roles; process-only scenarios are skipped, not failed.
				if spec, err := faults.Scenario(scen, 1); err == nil && spec.NetEnabled() {
					c := caseSpec{
						mode:     "cluster",
						workers:  2 + rng.Intn(2), // 2- and 3-node clusters
						engine:   engines[rng.Intn(len(engines))],
						prog:     programs[rng.Intn(len(programs))],
						scenario: scen,
						seed:     rng.Int63n(1 << 30),
					}
					v, _ := runCluster(c, orc, costs)
					record(v)
					cases++
				}
			}
		}
	}

	// Leak check: every pool campaign closed its pool; give exiting
	// goroutines a moment before declaring a leak.
	leaked := 0
	for i := 0; i < 50; i++ {
		leaked = runtime.NumGoroutine() - baseGoroutines
		if leaked <= 2 {
			leaked = 0
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Printf("\nchaos soak: %d cases, seed %d\n", cases, *seed)
	for _, scen := range scenarios {
		parts := []string{}
		for _, class := range []string{"completed", "aborted", "rejected", "FAILED"} {
			if n := tally[scen][class]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", class, n))
			}
		}
		fmt.Printf("  %-14s %s\n", scen, strings.Join(parts, " "))
	}
	if leaked > 0 {
		fmt.Printf("FAIL: %d goroutines leaked past pool shutdown\n", leaked)
	}
	if len(failures) > 0 || leaked > 0 {
		fmt.Printf("chaos soak FAILED: %d failing cases, %d leaked goroutines\n", len(failures), leaked)
		os.Exit(1)
	}
	fmt.Println("chaos soak clean: every verdict completed, aborted or rejected within contract")
}
