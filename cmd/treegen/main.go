// Command treegen generates and describes the unbalanced synthetic trees
// of the paper's Table 3 and Figure 8: node counts, leaves, depth and
// depth-1 subtree shares, for the built-in Tree1/Tree2/Tree3 shapes (and
// their right-heavy mirrors) or a custom fraction vector.
//
// Usage:
//
//	treegen                      # describe the Table 3 six at default scale
//	treegen -tree tree3 -size 500000 -reverse
//	treegen -fractions 61,28,11 -size 200000   # the Figure 8 shape
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"adaptivetc"
	"adaptivetc/internal/experiments"
	"adaptivetc/problems/synthtree"
)

func main() {
	treeName := flag.String("tree", "", "tree1, tree2, tree3, or empty for the full Table 3 set")
	size := flag.Int64("size", 150000, "leaf count")
	reverse := flag.Bool("reverse", false, "mirror left-heavy to right-heavy")
	fractions := flag.String("fractions", "", "comma-separated custom depth-1 fractions (overrides -tree)")
	alpha := flag.Float64("alpha", 2.5, "deep-split skew exponent")
	seed := flag.Uint("seed", 20100424, "LCG seed")
	flag.Parse()

	describe := func(spec synthtree.Spec) {
		spec.Seed = uint32(*seed)
		if *reverse {
			spec = spec.Reverse()
		}
		st := adaptivetc.Analyze(synthtree.New(spec), 0)
		fmt.Printf("%-10s nodes=%-10d leaves=%-10d depth=%-4d depth-1 shares:", spec.Label, st.Nodes, st.Leaves, st.Depth)
		for _, p := range st.Depth1Percent() {
			fmt.Printf(" %.3f%%", p)
		}
		fmt.Println()
	}

	if *fractions != "" {
		var fr []float64
		for _, part := range strings.Split(*fractions, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "treegen: bad fraction %q: %v\n", part, err)
				os.Exit(2)
			}
			fr = append(fr, v)
		}
		describe(synthtree.Spec{Label: "custom", Size: *size, RootFractions: fr, Alpha: *alpha})
		return
	}
	switch *treeName {
	case "tree1":
		describe(synthtree.Tree1(*size))
	case "tree2":
		describe(synthtree.Tree2(*size))
	case "tree3":
		describe(synthtree.Tree3(*size))
	case "":
		for _, spec := range experiments.Table3Specs(experiments.Default) {
			spec.Size = *size
			st := adaptivetc.Analyze(synthtree.New(spec), 0)
			fmt.Printf("%-10s nodes=%-10d leaves=%-10d depth=%-4d depth-1 shares:", spec.Label, st.Nodes, st.Leaves, st.Depth)
			for _, p := range st.Depth1Percent() {
				fmt.Printf(" %.3f%%", p)
			}
			fmt.Println()
		}
	default:
		fmt.Fprintf(os.Stderr, "treegen: unknown tree %q\n", *treeName)
		os.Exit(2)
	}
}
