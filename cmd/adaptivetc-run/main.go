// Command adaptivetc-run executes one (problem, engine, workers)
// combination and prints the result with full scheduler statistics.
//
// Usage:
//
//	adaptivetc-run -prog nqueens-array -n 11 -engine adaptivetc -workers 8
//	adaptivetc-run -prog sudoku-input1 -n 44 -engine tascell -workers 4 -profile
//	adaptivetc-run -prog tree3 -size 200000 -engine cilk -workers 8 -real
//
// Programs (see -list): nqueens-array, nqueens-compute, sudoku-balanced,
// sudoku-input1, sudoku-input2, sudoku-empty4, strimko, knight, pentomino,
// fib, comp, tree1, tree2, tree3 (use -reverse for the right-heavy
// mirrors), the mini-language programs atc-nqueens, atc-fib, atc-latin,
// atc-knight, and the post-paper families dag-layered, dag-stencil,
// bnb-knapsack, bnb-tsp, first-nqueens, first-sat (two-knob families
// take -m; first-* run with first-solution-wins semantics).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"adaptivetc"
	"adaptivetc/internal/experiments"
	"adaptivetc/internal/wsrt"
)

func main() {
	list := flag.Bool("list", false, "list program names and exit")
	progName := flag.String("prog", "nqueens-array", "program to run")
	n := flag.Int("n", 10, "problem size parameter (board size, removals, givens, …)")
	m := flag.Int("m", 0, "secondary size parameter of two-knob families (DAG width, knapsack capacity, SAT clauses; 0 = family default)")
	size := flag.Int64("size", 100000, "synthetic tree leaf count")
	reverse := flag.Bool("reverse", false, "mirror a synthetic tree (L→R)")
	engineName := flag.String("engine", "adaptivetc", "engine: serial, cilk, cilk-synched, tascell, adaptivetc, cutoff-programmer, cutoff-library, helpfirst, slaw")
	workers := flag.Int("workers", 8, "number of workers")
	seed := flag.Int64("seed", 1, "victim-selection seed")
	stealPolicy := flag.String("steal-policy", "random",
		fmt.Sprintf("steal strategy: %v (wsrt engines only)", wsrt.StealPolicyNames()))
	relaxed := flag.Bool("relaxed-deque", false, "use the lock-reduced deque variant (implies a growable buffer)")
	profile := flag.Bool("profile", false, "collect the per-phase time breakdown")
	real := flag.Bool("real", false, "run on real goroutines instead of virtual time")
	cutoff := flag.Int("cutoff", 0, "cut-off depth (cutoff-programmer, or with -force-cutoff)")
	forceCutoff := flag.Bool("force-cutoff", false, "pin AdaptiveTC's cutoff to -cutoff instead of ⌈log2 N⌉")
	analyze := flag.Bool("analyze", false, "print the search-tree shape instead of running")
	timeout := flag.Duration("timeout", 0, "abort the run after this wall-clock duration (0 = none; tascell does not observe it)")
	flag.Parse()

	if *list {
		for _, name := range experiments.ProgramNames() {
			fmt.Println(name)
		}
		return
	}
	prog, err := experiments.BuildProgramM(*progName, *n, *m, *size, *reverse)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptivetc-run: %v\n", err)
		os.Exit(2)
	}
	if *analyze {
		fmt.Println(adaptivetc.Analyze(prog, 100e6))
		return
	}
	engine, err := adaptivetc.EngineByName(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptivetc-run: %v\n", err)
		os.Exit(2)
	}
	if !wsrt.ValidStealPolicy(*stealPolicy) {
		fmt.Fprintf(os.Stderr, "adaptivetc-run: unknown -steal-policy %q (have %v)\n",
			*stealPolicy, wsrt.StealPolicyNames())
		os.Exit(2)
	}
	opt := adaptivetc.Options{
		Workers:      *workers,
		Seed:         *seed,
		Profile:      *profile,
		Cutoff:       *cutoff,
		ForceCutoff:  *forceCutoff,
		StealPolicy:  *stealPolicy,
		RelaxedDeque: *relaxed,
		// First-solution families carry their mode in registry metadata:
		// the run stops at the first claimed witness instead of summing
		// the whole tree.
		FirstSolution: experiments.FirstSolution(*progName),
	}
	if *real {
		opt.Platform = adaptivetc.NewRealPlatform(*seed)
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opt.Ctx = ctx
	}
	res, err := engine.Run(prog, opt)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "adaptivetc-run: run aborted: exceeded -timeout %v (raise it, shrink the problem, or add workers)\n", *timeout)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "adaptivetc-run: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res)
	st := res.Stats
	fmt.Printf("nodes=%d tasks=%d fake=%d special=%d steals=%d steal-fails=%d suspends=%d\n",
		st.Nodes, st.TasksCreated, st.FakeTasks, st.SpecialTasks, st.Steals, st.StealFails, st.Suspends)
	fmt.Printf("copies=%d (%d bytes) polls=%d requests=%d max-deque-depth=%d\n",
		st.WorkspaceCopies, st.WorkspaceBytes, st.Polls, st.Requests, st.MaxDequeDepth)
	if *profile {
		fmt.Printf("time: worker=%dns work=%d copy=%d deque=%d poll=%d wait=%d steal=%d respond=%d\n",
			st.WorkerTime, st.WorkTime, st.CopyTime, st.DequeTime, st.PollTime, st.WaitTime, st.StealTime, st.RespondTime)
	}
}
