// Command adaptivetc-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	adaptivetc-bench [-exp all|fig4|fig5|fig6|fig7|fig8|fig9|fig10|table2|table3]
//	                 [-scale quick|default|full] [-threads 8] [-seed 1]
//	                 [-cutoff 5] [-parallel 0] [-repeats 1] [-csv out.csv]
//	                 [-trace run.json]
//	                 [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Output is plain text, one table per figure, with speedups measured in
// deterministic virtual time (see the vtime package docs). Results for the
// default scale are recorded in EXPERIMENTS.md.
//
// -parallel runs that many experiment cells concurrently (0 means one per
// CPU, 1 forces sequential). Output is byte-identical at any setting; only
// wall-clock time changes.
//
// -trace skips the experiment suite: it runs one AdaptiveTC n-queens(8)
// execution with the scheduler event tracer attached (-threads workers,
// -seed victim selection), replays the trace against the scheduler's
// conservation-law invariants, and writes it as Chrome trace_event JSON to
// the given file — load it in chrome://tracing or Perfetto.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"adaptivetc/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig4, fig5, fig6, fig7, fig8, fig9, fig10, table2, table3, steals")
	scaleFlag := flag.String("scale", "default", "workload scale: quick, default, full")
	threads := flag.Int("threads", 8, "maximum thread count in sweeps")
	seed := flag.Int64("seed", 1, "victim-selection seed")
	cutoff := flag.Int("cutoff", 3, "Cutoff-programmer depth for fig9")
	repeats := flag.Int("repeats", 1, "runs per configuration; the median makespan is plotted")
	csvPath := flag.String("csv", "", "also write sweep samples as CSV to this file")
	parallel := flag.Int("parallel", 0, "experiment cells run concurrently; 0 = GOMAXPROCS, 1 = sequential")
	tracePath := flag.String("trace", "", "write one invariant-checked AdaptiveTC run as Chrome trace JSON to this file and exit")
	traceInject := flag.Bool("trace-inject-violation", false, "corrupt the trace before the invariant check (CI failure-path test)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	scale, ok := experiments.ParseScale(*scaleFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "adaptivetc-bench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	cfg := experiments.Config{
		Scale:            scale,
		Out:              os.Stdout,
		MaxThreads:       *threads,
		Seed:             *seed,
		CutoffProgrammer: *cutoff,
		Repeats:          *repeats,
		Parallel:         *parallel,
	}
	if *tracePath != "" {
		cfg.InjectTraceViolation = *traceInject
		if err := experiments.TraceRun(cfg, *tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "adaptivetc-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptivetc-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		experiments.CSVHeader(f)
		cfg.CSV = f
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptivetc-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "adaptivetc-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	start := time.Now()
	if err := experiments.ByName(*exp, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "adaptivetc-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n[done in %s]\n", time.Since(start).Round(time.Millisecond))
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptivetc-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "adaptivetc-bench: %v\n", err)
			os.Exit(1)
		}
	}
}
