package adaptivetc_test

import (
	"testing"

	"adaptivetc"
	"adaptivetc/problems/nqueens"
)

// nqueens8Solutions is the known solution count for 8 queens on an 8×8
// board, the classic published value.
const nqueens8Solutions = 92

// TestEngineRace gives every scheduler family its own named subtest on the
// Real platform — actual goroutines, actual contention — so a race-detector
// run (`go test -race -run TestEngineRace`) pinpoints the faulty engine by
// name. Each subtest solves 8-queens with 4 workers and checks the known
// count, exercising the THE-protocol deque, the frame deposit path and the
// frame/box free-lists under genuine parallelism.
func TestEngineRace(t *testing.T) {
	engines := []adaptivetc.Engine{
		adaptivetc.NewCilk(),
		adaptivetc.NewCutoffProgrammer(),
		adaptivetc.NewAdaptiveTC(),
		adaptivetc.NewSLAW(),
		adaptivetc.NewTascell(),
	}
	for _, e := range engines {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			t.Parallel()
			p := nqueens.NewArray(8)
			res, err := e.Run(p, adaptivetc.Options{
				Workers:  4,
				Platform: adaptivetc.NewRealPlatform(7),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Value != nqueens8Solutions {
				t.Errorf("%s found %d solutions for 8-queens, want %d", e.Name(), res.Value, nqueens8Solutions)
			}
		})
	}
}
