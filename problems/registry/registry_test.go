package registry

import "testing"

// TestBuildDefaults builds every registered family with zero Params (family
// defaults) and checks the instance self-describes.
func TestBuildDefaults(t *testing.T) {
	for _, name := range Names() {
		p, err := Build(name, Params{})
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("Build(%q): empty program name", name)
		}
		if p.Root() == nil {
			t.Fatalf("Build(%q): nil root workspace", name)
		}
	}
}

// TestBuildUnknown rejects unregistered names.
func TestBuildUnknown(t *testing.T) {
	if _, err := Build("no-such-program", Params{}); err == nil {
		t.Fatal("Build accepted an unknown name")
	}
}

// TestZeroParamsBackwardCompat pins the instance every name builds with
// zero Params. Params grew an M knob; a zero-valued M must leave every
// single-knob family byte-for-byte identical, which the instance Name()
// strings (they embed the effective size parameters) witness.
func TestZeroParamsBackwardCompat(t *testing.T) {
	want := map[string]string{
		"nqueens-array":   "nqueen-array(8)",
		"nqueens-compute": "nqueen-compute(8)",
		"sudoku-balanced": "sudoku-balanced(40)",
		"sudoku-input1":   "sudoku-input1(40)",
		"sudoku-input2":   "sudoku-input2(40)",
		"sudoku-empty4":   "sudoku-empty4",
		"strimko":         "strimko-diag(7,7)",
		"knight":          "knight(5x5@0,0)",
		"pentomino":       "pentomino(5)",
		"fib":             "fib(20)",
		"comp":            "comp(18)",
		"tree1":           "synthtree-tree1L",
		"tree2":           "synthtree-tree2L",
		"tree3":           "synthtree-tree3L",
		"atc-nqueens":     "atc:nqueens",
		"atc-fib":         "atc:fib",
		"atc-latin":       "atc:latin",
		"atc-knight":      "atc:knight",
		// Two-knob and first-solution families, pinned at their defaults
		// so default drift is a loud failure too.
		"dag-layered":   "dag-layered(L=5,W=4)",
		"dag-stencil":   "dag-stencil(6x6)",
		"bnb-knapsack":  "bnb-knapsack(n=14,cap=76)",
		"bnb-tsp":       "bnb-tsp(n=7)",
		"first-nqueens": "first-nqueens(7)",
		"first-sat":     "first-sat(v=12,c=48)",
	}
	for _, name := range Names() {
		w, ok := want[name]
		if !ok {
			t.Errorf("registry name %q not pinned here — add it", name)
			continue
		}
		prog, err := Build(name, Params{})
		if err != nil {
			t.Errorf("Build(%q, zero Params): %v", name, err)
			continue
		}
		if got := prog.Name(); got != w {
			t.Errorf("Build(%q, zero Params).Name() = %q, want %q", name, got, w)
		}
	}
	for name := range want {
		if _, err := Build(name, Params{}); err != nil {
			t.Errorf("pinned name %q no longer registered: %v", name, err)
		}
	}
}

// TestFirstSolutionMetadata pins which families carry first-solution
// semantics and that their witness verifiers accept a genuine witness and
// reject a corrupted one.
func TestFirstSolutionMetadata(t *testing.T) {
	for _, name := range Names() {
		want := name == "first-nqueens" || name == "first-sat"
		if got := FirstSolution(name); got != want {
			t.Errorf("FirstSolution(%q) = %v, want %v", name, got, want)
		}
	}
	if _, checkable := VerifyWitness("fib", Params{}, 6765); checkable {
		t.Error("VerifyWitness(fib) should not be checkable")
	}
	if _, checkable := VerifyWitness("first-nqueens", Params{}, 0); checkable {
		t.Error("VerifyWitness with zero value should not be checkable (may mean no solution)")
	}
	// Valid 7-queens placement {0,2,4,6,1,3,5}, packed Σ (col+1)·8^row.
	var w int64
	mul := int64(1)
	for _, c := range []int64{0, 2, 4, 6, 1, 3, 5} {
		w += (c + 1) * mul
		mul *= 8
	}
	if ok, checkable := VerifyWitness("first-nqueens", Params{}, w); !checkable || !ok {
		t.Errorf("VerifyWitness(first-nqueens, %d) = %v,%v; want true,true", w, ok, checkable)
	}
	if ok, checkable := VerifyWitness("first-nqueens", Params{}, w+1); !checkable || ok {
		t.Errorf("VerifyWitness(first-nqueens, corrupted) = %v,%v; want false,true", ok, checkable)
	}
}
