package registry

import "testing"

// TestBuildDefaults builds every registered family with zero Params (family
// defaults) and checks the instance self-describes.
func TestBuildDefaults(t *testing.T) {
	for _, name := range Names() {
		p, err := Build(name, Params{})
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("Build(%q): empty program name", name)
		}
		if p.Root() == nil {
			t.Fatalf("Build(%q): nil root workspace", name)
		}
	}
}

// TestBuildUnknown rejects unregistered names.
func TestBuildUnknown(t *testing.T) {
	if _, err := Build("no-such-program", Params{}); err == nil {
		t.Fatal("Build accepted an unknown name")
	}
}
