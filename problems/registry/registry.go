// Package registry maps benchmark names to Program constructors — the
// shared vocabulary of cmd/adaptivetc-run, the experiment drivers and the
// serving API (internal/serve), which needs to build a Program from a JSON
// job submission without linking the experiment machinery.
package registry

import (
	"fmt"
	"sort"

	"adaptivetc/internal/lang"
	"adaptivetc/internal/sched"
	"adaptivetc/problems/bnb"
	"adaptivetc/problems/comp"
	"adaptivetc/problems/dagflow"
	"adaptivetc/problems/fib"
	"adaptivetc/problems/firstsol"
	"adaptivetc/problems/knight"
	"adaptivetc/problems/nqueens"
	"adaptivetc/problems/pentomino"
	"adaptivetc/problems/strimko"
	"adaptivetc/problems/sudoku"
	"adaptivetc/problems/synthtree"
)

// Params are the family-specific size knobs of one instance.
type Params struct {
	// N is the main size parameter (board side, fib argument, removals,
	// givens, …). Zero means the family default.
	N int
	// M is the secondary size parameter of two-knob families (DAG width,
	// knapsack capacity, SAT clause count). Zero means the family default;
	// single-knob families ignore it.
	M int
	// Size is the synthetic-tree leaf count. Zero means the family default.
	Size int64
	// Reverse mirrors a synthetic tree (worst case for left-to-right
	// depth-first stealing).
	Reverse bool
}

// entry is one registered program family.
type entry struct {
	defaultN    int
	defaultM    int
	defaultSize int64
	build       func(Params) (sched.Program, error)
	// firstSolution marks families meant to run with first-solution-wins
	// semantics (Options.FirstSolution / JobSpec.FirstSolution): the run's
	// Value is one solution witness, not a sum over the whole tree.
	firstSolution bool
	// verify, when set, checks a nonzero first-solution witness against a
	// rebuilt instance.
	verify func(Params, int64) bool
}

// table is the registry. Defaults are chosen to finish in well under a
// second serially, so a serve job with no parameters is a sensible probe.
var table = map[string]entry{
	"nqueens-array": {defaultN: 8, build: func(p Params) (sched.Program, error) {
		return nqueens.NewArray(p.N), nil
	}},
	"nqueens-compute": {defaultN: 8, build: func(p Params) (sched.Program, error) {
		return nqueens.NewCompute(p.N), nil
	}},
	"sudoku-balanced": {defaultN: 40, build: func(p Params) (sched.Program, error) {
		return sudoku.Balanced(3, p.N), nil
	}},
	"sudoku-input1": {defaultN: 40, build: func(p Params) (sched.Program, error) {
		return sudoku.Input1(3, p.N), nil
	}},
	"sudoku-input2": {defaultN: 40, build: func(p Params) (sched.Program, error) {
		return sudoku.Input2(3, p.N), nil
	}},
	"sudoku-empty4": {build: func(p Params) (sched.Program, error) {
		return sudoku.Empty(2), nil
	}},
	"strimko": {defaultN: 7, build: func(p Params) (sched.Program, error) {
		return strimko.Diagonal(7, p.N), nil
	}},
	"knight": {defaultN: 5, build: func(p Params) (sched.Program, error) {
		return knight.New(p.N), nil
	}},
	"pentomino": {defaultN: 5, build: func(p Params) (sched.Program, error) {
		return pentomino.New(p.N), nil
	}},
	"fib": {defaultN: 20, build: func(p Params) (sched.Program, error) {
		return fib.New(p.N), nil
	}},
	"comp": {defaultN: 18, build: func(p Params) (sched.Program, error) {
		return comp.New(p.N), nil
	}},
	"tree1": {defaultSize: 1 << 16, build: func(p Params) (sched.Program, error) {
		return tree(synthtree.Tree1(p.Size), p.Reverse), nil
	}},
	"tree2": {defaultSize: 1 << 16, build: func(p Params) (sched.Program, error) {
		return tree(synthtree.Tree2(p.Size), p.Reverse), nil
	}},
	"tree3": {defaultSize: 1 << 16, build: func(p Params) (sched.Program, error) {
		return tree(synthtree.Tree3(p.Size), p.Reverse), nil
	}},
	"atc-nqueens": {defaultN: 8, build: compiled("nqueens")},
	"atc-fib":     {defaultN: 20, build: compiled("fib")},
	"atc-latin":   {defaultN: 5, build: compiled("latin")},
	"atc-knight":  {defaultN: 5, build: compiled("knight")},
	// Dataflow DAGs: N layers/rows × M width/cols (see problems/dagflow).
	"dag-layered": {defaultN: 5, defaultM: 4, build: func(p Params) (sched.Program, error) {
		return dagflow.NewLayered(p.N, p.M, 20100424), nil
	}},
	"dag-stencil": {defaultN: 6, defaultM: 6, build: func(p Params) (sched.Program, error) {
		return dagflow.NewStencil(p.N, p.M), nil
	}},
	// Branch-and-bound: N items/cities, M the knapsack capacity override
	// (0 = 40% of total weight; see problems/bnb).
	"bnb-knapsack": {defaultN: 14, build: func(p Params) (sched.Program, error) {
		return bnb.NewKnapsack(p.N, int64(p.M), 20100424), nil
	}},
	"bnb-tsp": {defaultN: 7, build: func(p Params) (sched.Program, error) {
		return bnb.NewTSP(p.N, 20100424), nil
	}},
	// First-solution-wins search: N board side / variable count, M the SAT
	// clause count (see problems/firstsol).
	"first-nqueens": {defaultN: 7, firstSolution: true,
		build: func(p Params) (sched.Program, error) {
			return firstsol.NewQueens(p.N), nil
		},
		verify: func(p Params, v int64) bool {
			return firstsol.NewQueens(p.N).Verify(v)
		}},
	"first-sat": {defaultN: 12, firstSolution: true,
		build: func(p Params) (sched.Program, error) {
			return firstsol.NewSAT(p.N, p.M, 20100424), nil
		},
		verify: func(p Params, v int64) bool {
			return firstsol.NewSAT(p.N, p.M, 20100424).Verify(v)
		}},
}

func tree(spec synthtree.Spec, reverse bool) sched.Program {
	spec.Seed = 20100424
	if reverse {
		spec = spec.Reverse()
	}
	return synthtree.New(spec)
}

func compiled(src string) func(Params) (sched.Program, error) {
	return func(p Params) (sched.Program, error) {
		return lang.CompileProgram(src, lang.Sources()[src], map[string]int64{"n": int64(p.N)})
	}
}

// defaulted fills zero-valued Params fields with the family defaults.
func (e entry) defaulted(p Params) Params {
	if p.N == 0 {
		p.N = e.defaultN
	}
	if p.M == 0 {
		p.M = e.defaultM
	}
	if p.Size == 0 {
		p.Size = e.defaultSize
	}
	return p
}

// Build constructs the named benchmark instance, applying the family
// defaults for zero-valued Params fields.
func Build(name string, p Params) (sched.Program, error) {
	e, ok := table[name]
	if !ok {
		return nil, fmt.Errorf("unknown program %q", name)
	}
	return e.build(e.defaulted(p))
}

// FirstSolution reports whether the named family is meant to run with
// first-solution-wins semantics. Unknown names report false.
func FirstSolution(name string) bool {
	return table[name].firstSolution
}

// VerifyWitness checks a first-solution witness against the named family.
// checkable is false when the family has no verifier or when v is zero —
// zero may legitimately mean "search space has no solution", which a
// witness check cannot distinguish from a lost result.
func VerifyWitness(name string, p Params, v int64) (ok, checkable bool) {
	e, found := table[name]
	if !found || e.verify == nil || v == 0 {
		return false, false
	}
	return e.verify(e.defaulted(p), v), true
}

// Names lists the registered program names, sorted.
func Names() []string {
	names := make([]string, 0, len(table))
	for name := range table {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
