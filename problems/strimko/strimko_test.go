package strimko

import (
	"testing"

	"adaptivetc/internal/progtest"
	"adaptivetc/internal/sched"
)

func countSerial(t *testing.T, p *Program) int64 {
	t.Helper()
	res, err := sched.Serial{}.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Value
}

// TestLatinSquareCounts uses the classical counts of Latin squares:
// order 3 → 12, order 4 → 576, order 5 → 161280.
func TestLatinSquareCounts(t *testing.T) {
	want := map[int]int64{1: 1, 2: 2, 3: 12, 4: 576, 5: 161280}
	for n, w := range want {
		if n == 5 && testing.Short() {
			continue
		}
		if got := countSerial(t, LatinSquares(n)); got != w {
			t.Errorf("latin(%d) = %d, want %d", n, got, w)
		}
	}
}

// naive counts solutions of an instance with an independent DFS.
func naive(p *Program) int64 {
	n := p.n
	board := append([]uint8(nil), p.givens...)
	legal := func(cell int, v uint8) bool {
		r, c := cell/n, cell%n
		for i := 0; i < n; i++ {
			if board[r*n+i] == v || board[i*n+c] == v {
				return false
			}
		}
		for i := 0; i < n*n; i++ {
			if p.stream[i] == p.stream[cell] && board[i] == v {
				return false
			}
		}
		return true
	}
	var rec func(cell int) int64
	rec = func(cell int) int64 {
		for ; cell < n*n && board[cell] != 0; cell++ {
		}
		if cell == n*n {
			return 1
		}
		var sum int64
		for v := uint8(1); v <= uint8(n); v++ {
			if legal(cell, v) {
				board[cell] = v
				sum += rec(cell + 1)
				board[cell] = 0
			}
		}
		return sum
	}
	return rec(0)
}

func TestDiagonalAgainstNaive(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		for _, givens := range []int{0, 1, 2} {
			if givens > 0 && n != 5 {
				continue // diagonal prefill needs n coprime to 6
			}
			p := Diagonal(n, givens)
			want := naive(p)
			if got := countSerial(t, p); got != want {
				t.Errorf("diag(%d,%d) = %d, naive says %d", n, givens, got, want)
			}
		}
	}
}

func TestStreamConstraintBinds(t *testing.T) {
	// Diagonal streams forbid some boards that plain Latin squares allow,
	// so the diagonal instance can never have more solutions. Knut Vik
	// designs (Latin squares whose broken diagonals are also transversal)
	// exist only for n coprime to 6, so n=5 is the smallest useful size —
	// and n=4 must come out to exactly zero.
	lat := countSerial(t, LatinSquares(5))
	diag := countSerial(t, Diagonal(5, 0))
	if diag > lat {
		t.Fatalf("diagonal streams (%d) exceed latin squares (%d)", diag, lat)
	}
	if diag == 0 {
		t.Fatal("diagonal instance has no solutions; bad benchmark instance")
	}
	if got := countSerial(t, Diagonal(4, 0)); got != 0 {
		t.Fatalf("diag(4) = %d, want 0 (no Knut Vik design of order 4)", got)
	}
}

func TestRejectsBadStreams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on uneven streams")
		}
	}()
	stream := make([]int, 9) // all cells in stream 0
	New(3, stream, make([]uint8, 9), "bad")
}

func TestCloneIsolation(t *testing.T) {
	p := Diagonal(4, 0)
	ws := p.Root()
	if !p.Apply(ws, 0, 0) {
		t.Fatal("move refused")
	}
	c := ws.Clone()
	p.Undo(ws, 0, 0)
	if p.Apply(c, 0, 0) {
		t.Fatal("clone shares masks with original")
	}
}

func TestConformance(t *testing.T) {
	progtest.Conformance(t, LatinSquares(4))
	progtest.Conformance(t, Diagonal(5, 0))
}
