// Package strimko is the paper's Strimko benchmark (Table 1): fill an n×n
// grid so that every row, every column and every *stream* (a partition of
// the cells into n chains of n cells) contains the digits 1..n exactly
// once. With streams set to the rows the stream constraint degenerates and
// the instance counts Latin squares — order 4 has 576 and order 5 has
// 161280, two classical absolute oracles the tests use.
package strimko

import (
	"fmt"

	"adaptivetc/internal/sched"
)

// Program counts the solutions of one Strimko instance.
type Program struct {
	n       int
	label   string
	stream  []int   // stream[cell] = stream index
	givens  []uint8 // 0 = empty
	empties []int
}

// New builds an instance. stream assigns each of the n*n cells to one of n
// streams, each of which must contain exactly n cells; board gives the
// pre-filled digits (0 = empty).
func New(n int, stream []int, board []uint8, label string) *Program {
	if len(stream) != n*n || len(board) != n*n {
		panic(fmt.Sprintf("strimko: stream/board length %d/%d, want %d", len(stream), len(board), n*n))
	}
	count := make([]int, n)
	for _, s := range stream {
		if s < 0 || s >= n {
			panic(fmt.Sprintf("strimko: stream index %d out of range [0,%d)", s, n))
		}
		count[s]++
	}
	for s, c := range count {
		if c != n {
			panic(fmt.Sprintf("strimko: stream %d has %d cells, want %d", s, c, n))
		}
	}
	p := &Program{n: n, label: label, stream: append([]int(nil), stream...), givens: append([]uint8(nil), board...)}
	for i, v := range board {
		if v == 0 {
			p.empties = append(p.empties, i)
		}
	}
	return p
}

// LatinSquares returns the degenerate instance whose streams are the rows,
// so solutions are exactly the order-n Latin squares.
func LatinSquares(n int) *Program {
	stream := make([]int, n*n)
	for i := range stream {
		stream[i] = i / n
	}
	return New(n, stream, make([]uint8, n*n), fmt.Sprintf("latin(%d)", n))
}

// Diagonal returns the benchmark instance of side n: streams are the broken
// diagonals (stream s holds the cells (r, (s+r) mod n)), with the first
// `givens` cells in row-major order pre-filled from the cyclic solution
// v(r,c) = (2r+c) mod n (more givens → smaller search tree).
func Diagonal(n, givens int) *Program {
	stream := make([]int, n*n)
	for r := 0; r < n; r++ {
		for s := 0; s < n; s++ {
			stream[r*n+(s+r)%n] = s
		}
	}
	board := make([]uint8, n*n)
	// Pre-fill from the cyclic Latin square v(r,c) = (2r + c) mod n, which
	// satisfies rows and columns for odd n and the broken-diagonal streams
	// when additionally gcd(n, 3) = 1 — so givens require n coprime to 6
	// (the paper's 7×7 qualifies).
	if givens > 0 && (n%2 == 0 || n%3 == 0) {
		panic(fmt.Sprintf("strimko: diagonal prefill needs n coprime to 6, got %d", n))
	}
	if givens > n*n {
		givens = n * n
	}
	for i := 0; i < givens; i++ {
		r, c := i/n, i%n
		board[i] = uint8((2*r+c)%n) + 1
	}
	return New(n, stream, board, fmt.Sprintf("diag(%d,%d)", n, givens))
}

// Name implements sched.Program.
func (p *Program) Name() string { return "strimko-" + p.label }

// EmptyCells returns the search depth.
func (p *Program) EmptyCells() int { return len(p.empties) }

type ws struct {
	n      int
	board  []uint8
	row    []uint32
	col    []uint32
	stream []uint32
}

// Clone implements sched.Workspace.
func (w *ws) Clone() sched.Workspace {
	return &ws{
		n:      w.n,
		board:  append([]uint8(nil), w.board...),
		row:    append([]uint32(nil), w.row...),
		col:    append([]uint32(nil), w.col...),
		stream: append([]uint32(nil), w.stream...),
	}
}

// Bytes implements sched.Workspace.
func (w *ws) Bytes() int { return len(w.board) + 4*(len(w.row)+len(w.col)+len(w.stream)) }

// CopyFrom implements sched.Reusable.
func (w *ws) CopyFrom(src sched.Workspace) {
	s := src.(*ws)
	w.n = s.n
	copy(w.board, s.board)
	copy(w.row, s.row)
	copy(w.col, s.col)
	copy(w.stream, s.stream)
}

// Root implements sched.Program.
func (p *Program) Root() sched.Workspace {
	w := &ws{
		n:      p.n,
		board:  append([]uint8(nil), p.givens...),
		row:    make([]uint32, p.n),
		col:    make([]uint32, p.n),
		stream: make([]uint32, p.n),
	}
	for cell, v := range w.board {
		if v == 0 {
			continue
		}
		bit := uint32(1) << (v - 1)
		r, c := cell/p.n, cell%p.n
		if w.row[r]&bit != 0 || w.col[c]&bit != 0 || w.stream[p.stream[cell]]&bit != 0 {
			panic("strimko: conflicting givens in " + p.label)
		}
		w.row[r] |= bit
		w.col[c] |= bit
		w.stream[p.stream[cell]] |= bit
	}
	return w
}

// Terminal implements sched.Program.
func (p *Program) Terminal(w sched.Workspace, depth int) (int64, bool) {
	if depth == len(p.empties) {
		return 1, true
	}
	return 0, false
}

// Moves implements sched.Program.
func (p *Program) Moves(w sched.Workspace, depth int) int { return p.n }

// Apply implements sched.Program.
func (p *Program) Apply(w sched.Workspace, depth, m int) bool {
	s := w.(*ws)
	cell := p.empties[depth]
	r, c := cell/p.n, cell%p.n
	st := p.stream[cell]
	bit := uint32(1) << m
	if s.row[r]&bit != 0 || s.col[c]&bit != 0 || s.stream[st]&bit != 0 {
		return false
	}
	s.board[cell] = uint8(m + 1)
	s.row[r] |= bit
	s.col[c] |= bit
	s.stream[st] |= bit
	return true
}

// Undo implements sched.Program.
func (p *Program) Undo(w sched.Workspace, depth, m int) {
	s := w.(*ws)
	cell := p.empties[depth]
	r, c := cell/p.n, cell%p.n
	st := p.stream[cell]
	bit := uint32(1) << m
	s.board[cell] = 0
	s.row[r] &^= bit
	s.col[c] &^= bit
	s.stream[st] &^= bit
}
