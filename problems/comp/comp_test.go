package comp

import (
	"testing"
	"testing/quick"

	"adaptivetc/internal/progtest"
	"adaptivetc/internal/sched"
)

func TestSerialMatchesExpected(t *testing.T) {
	for _, n := range []int{1, 7, 64, 100, 500} {
		p := New(n)
		res, err := sched.Serial{}.Run(p, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != p.Expected() {
			t.Errorf("comp(%d) = %d, want %d", n, res.Value, p.Expected())
		}
	}
}

func TestLeafSizeInvariance(t *testing.T) {
	// The answer must not depend on the divide-and-conquer leaf size.
	f := func(leafSeed uint8) bool {
		leaf := 1 + int(leafSeed)%50
		p := NewLeaf(60, leaf)
		res, err := sched.Serial{}.Run(p, sched.Options{})
		if err != nil {
			return false
		}
		return res.Value == p.Expected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicArrays(t *testing.T) {
	a, b := New(100), New(100)
	if a.Expected() != b.Expected() {
		t.Fatal("array generation not deterministic")
	}
	if a.Expected() == 0 {
		t.Fatal("no matches at all; value range too wide for the test to bite")
	}
}

func TestNoTaskprivate(t *testing.T) {
	if New(10).Root().Bytes() != 0 {
		t.Error("comp must report zero taskprivate bytes (Figure 4 caption)")
	}
}

func TestNodeCostOnLeavesOnly(t *testing.T) {
	p := NewLeaf(256, 64)
	root := p.Root()
	if p.NodeCost(root, 0) != 0 {
		t.Error("interior rectangle charged leaf cost")
	}
	// Descend to a leaf.
	ws := root
	depth := 0
	for {
		if _, term := p.Terminal(ws, depth); term {
			break
		}
		if !p.Apply(ws, depth, 0) {
			t.Fatal("split refused")
		}
		depth++
	}
	if p.NodeCost(ws, depth) <= 0 {
		t.Error("leaf rectangle has no work cost")
	}
}

func TestConformance(t *testing.T) {
	progtest.Conformance(t, NewLeaf(96, 16))
}
