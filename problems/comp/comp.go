// Package comp is the paper's Comp(n) benchmark: compare array elements
// a[i] and b[j] for all 0 <= i, j < n, counting equal pairs. It is phrased
// as a divide-and-conquer over the n×n index rectangle — split the longer
// side until a block is small enough, then compare the block directly. Like
// fib it has no taskprivate data; the parallelism stresses task creation
// against a leaf with real work.
package comp

import (
	"fmt"

	"adaptivetc/internal/sched"
)

// Program counts equal pairs between two deterministic pseudo-random
// arrays of length N.
type Program struct {
	N    int
	Leaf int // block side at or below which a rectangle is compared directly

	a, b []int32
}

// New returns Comp(n) with the default leaf block side of 64.
func New(n int) *Program { return NewLeaf(n, 64) }

// NewLeaf returns Comp(n) with an explicit leaf block side.
func NewLeaf(n, leaf int) *Program {
	if n <= 0 || leaf <= 0 {
		panic(fmt.Sprintf("comp: invalid n=%d leaf=%d", n, leaf))
	}
	p := &Program{N: n, Leaf: leaf, a: make([]int32, n), b: make([]int32, n)}
	// Small value range so matches actually occur.
	x := uint64(0x9E3779B97F4A7C15)
	next := func() int32 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int32(x % 1024)
	}
	for i := range p.a {
		p.a[i] = next()
	}
	for i := range p.b {
		p.b[i] = next()
	}
	return p
}

// Name implements sched.Program.
func (p *Program) Name() string { return fmt.Sprintf("comp(%d)", p.N) }

// Expected computes the answer directly, for tests.
func (p *Program) Expected() int64 {
	var hist [1024]int64
	for _, v := range p.a {
		hist[v]++
	}
	var total int64
	for _, v := range p.b {
		total += hist[v]
	}
	return total
}

type rect struct{ i0, i1, j0, j1 int }

func (r rect) area() int64 { return int64(r.i1-r.i0) * int64(r.j1-r.j0) }

type ws struct {
	stack []rect
}

// Clone implements sched.Workspace.
func (w *ws) Clone() sched.Workspace {
	c := &ws{stack: make([]rect, len(w.stack), len(w.stack)+8)}
	copy(c.stack, w.stack)
	return c
}

// Bytes implements sched.Workspace: no taskprivate payload.
func (w *ws) Bytes() int { return 0 }

func (w *ws) top() rect { return w.stack[len(w.stack)-1] }

// Root implements sched.Program.
func (p *Program) Root() sched.Workspace {
	return &ws{stack: []rect{{0, p.N, 0, p.N}}}
}

// Terminal implements sched.Program: a block at or below the leaf side is
// compared directly.
func (p *Program) Terminal(w sched.Workspace, depth int) (int64, bool) {
	r := w.(*ws).top()
	if r.i1-r.i0 > p.Leaf || r.j1-r.j0 > p.Leaf {
		return 0, false
	}
	var sum int64
	for i := r.i0; i < r.i1; i++ {
		ai := p.a[i]
		for j := r.j0; j < r.j1; j++ {
			if ai == p.b[j] {
				sum++
			}
		}
	}
	return sum, true
}

// Moves implements sched.Program: split the longer side in two.
func (p *Program) Moves(w sched.Workspace, depth int) int { return 2 }

// Apply implements sched.Program.
func (p *Program) Apply(w sched.Workspace, depth, m int) bool {
	s := w.(*ws)
	r := s.top()
	var child rect
	if r.i1-r.i0 >= r.j1-r.j0 {
		mid := (r.i0 + r.i1) / 2
		if m == 0 {
			child = rect{r.i0, mid, r.j0, r.j1}
		} else {
			child = rect{mid, r.i1, r.j0, r.j1}
		}
	} else {
		mid := (r.j0 + r.j1) / 2
		if m == 0 {
			child = rect{r.i0, r.i1, r.j0, mid}
		} else {
			child = rect{r.i0, r.i1, mid, r.j1}
		}
	}
	if child.area() == 0 {
		return false
	}
	s.stack = append(s.stack, child)
	return true
}

// Undo implements sched.Program.
func (p *Program) Undo(w sched.Workspace, depth, m int) {
	s := w.(*ws)
	s.stack = s.stack[:len(s.stack)-1]
}

// NodeCost implements sched.Coster: leaves pay for the real pairwise
// comparisons they perform (about 1ns per pair in the virtual cost model).
func (p *Program) NodeCost(w sched.Workspace, depth int) int64 {
	r := w.(*ws).top()
	if r.i1-r.i0 > p.Leaf || r.j1-r.j0 > p.Leaf {
		return 0
	}
	return r.area()
}
