package synthtree

import (
	"testing"
	"testing/quick"

	"adaptivetc/internal/progtest"
	"adaptivetc/internal/sched"
)

func countSerial(t *testing.T, p *Program) int64 {
	t.Helper()
	res, err := sched.Serial{}.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Value
}

func TestValueEqualsSize(t *testing.T) {
	for _, spec := range []Spec{Tree1(5000), Tree2(5000), Tree3(5000), Fig8(5000)} {
		if got := countSerial(t, New(spec)); got != spec.Size {
			t.Errorf("%s: value = %d, want %d", spec.Label, got, spec.Size)
		}
	}
}

func TestValueEqualsSizeQuick(t *testing.T) {
	f := func(raw uint16, reversed bool) bool {
		size := int64(raw)%5000 + 1
		spec := Tree1(size)
		spec.Seed = uint32(raw)
		spec.Reversed = reversed
		return countSerial(t, New(spec)) == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	spec := Tree2(20000)
	spec.Seed = 99
	a := sched.Analyze(New(spec), 0)
	b := sched.Analyze(New(spec), 0)
	if a.Nodes != b.Nodes || a.Depth != b.Depth || a.Leaves != b.Leaves {
		t.Fatalf("same spec produced different trees: %v vs %v", a, b)
	}
}

func TestReverseMirrorsShape(t *testing.T) {
	l := Tree3(30000)
	r := l.Reverse()
	if r.Label != "tree3R" {
		t.Fatalf("reversed label = %q", r.Label)
	}
	sl := sched.Analyze(New(l), 0)
	sr := sched.Analyze(New(r), 0)
	if sl.Nodes != sr.Nodes || sl.Leaves != sr.Leaves || sl.Depth != sr.Depth {
		t.Fatalf("mirror changed totals: %v vs %v", sl, sr)
	}
	// The depth-1 size vectors must be exact mirrors.
	for i := range sl.Depth1 {
		if sl.Depth1[i] != sr.Depth1[len(sr.Depth1)-1-i] {
			t.Fatalf("depth-1 sizes not mirrored: %v vs %v", sl.Depth1, sr.Depth1)
		}
	}
}

func TestTree3Skew(t *testing.T) {
	st := sched.Analyze(New(Tree3(100000)), 0)
	pct := st.Depth1Percent()
	if len(pct) == 0 {
		t.Fatal("no depth-1 children")
	}
	// Table 3 says Tree3L's first child holds ~89.7% of the tree; the root
	// split is exact up to integer apportionment.
	if pct[0] < 85 {
		t.Errorf("tree3L first child holds %.1f%%, want the lion's share (~89.7%% in Table 3)", pct[0])
	}
	t.Logf("tree3L: %v", st)
}

func TestTree1MatchesTable3Roughly(t *testing.T) {
	st := sched.Analyze(New(Tree1(200000)), 0)
	want := []float64{42.512, 25.362, 13.019, 4.936, 0.416, 11.771, 1.984}
	pct := st.Depth1Percent()
	if len(pct) != len(want) {
		t.Fatalf("got %d depth-1 children, want %d (%v)", len(pct), len(want), pct)
	}
	for i := range want {
		if diff := pct[i] - want[i]; diff > 3 || diff < -3 {
			t.Errorf("child %d holds %.2f%%, Table 3 says %.2f%%", i, pct[i], want[i])
		}
	}
}

func TestNoInfiniteRecursion(t *testing.T) {
	// Extreme concentration used to make a child as large as its parent;
	// the shave-one-unit guard must keep depth finite.
	spec := Spec{Label: "extreme", Size: 3000, RootFractions: []float64{1, 0.0000001}, Alpha: 12}
	st := sched.Analyze(New(spec), 0)
	if st.Depth <= 0 || int64(st.Depth) > spec.Size {
		t.Fatalf("suspicious depth %d", st.Depth)
	}
	if got := countSerial(t, New(spec)); got != 3000 {
		t.Fatalf("value = %d, want 3000", got)
	}
}

func TestCloneIsolation(t *testing.T) {
	p := New(Tree1(1000))
	root := p.Root()
	if !p.Apply(root, 0, 0) {
		t.Fatal("move refused")
	}
	c := p.Root()
	c.(*ws).CopyFrom(root)
	p.Undo(root, 0, 0)
	if len(c.(*ws).stack) != 2 {
		t.Fatal("copy lost the descent")
	}
	if len(root.(*ws).stack) != 1 {
		t.Fatal("undo failed")
	}
}

func TestConformance(t *testing.T) {
	spec := Tree2(3000)
	spec.Seed = 77
	progtest.Conformance(t, New(spec))
	progtest.Conformance(t, New(spec.Reverse()))
}
