// Package synthtree generates the unbalanced search trees of the paper's
// §5.3 (Figure 8, Table 3, Figure 10). The paper builds its trees with a
// per-node linear congruential generator x_{i+1} = (x_i·A + C) mod M —
// "xi is localized in each node and is used to get the size of each
// sub-tree" — so the split is random at every node, and Table 3's
// "percent numbers" column records the split the RNG happened to produce
// at depth 1. We reproduce that structure: the depth-1 fractions are
// specified exactly (Table 3's published values), and every deeper node
// splits its size among up to seven children by largest-remainder
// apportionment of random weights uᵢ^Alpha drawn from the node-local LCG;
// Alpha tunes how lopsided the deep splits are (Tree1 < Tree2 < Tree3).
//
// Reversing a tree (Tree*L ↔ Tree*R) reverses the weight order at every
// node, producing the exact mirror: same sizes, same depth, heavy subtrees
// moved from the first child position to the last — the pair the paper
// uses to expose Tascell's wait-time asymmetry.
//
// The value of the whole tree is exactly Spec.Size (every leaf is worth 1
// and interior nodes apportion their size without loss), which doubles as
// a correctness oracle for every engine. Per-node work is a constant (the
// paper: "we set the execution time of each node to the average time of
// the task in the benchmarks").
package synthtree

import (
	"fmt"
	"math"

	"adaptivetc/internal/sched"
)

// LCG constants (Numerical Recipes), standing in for the paper's
// unpublished A, C, M.
const (
	lcgA = 1664525
	lcgC = 1013904223
	lcgM = 1 << 32
)

// Spec describes one synthetic tree.
type Spec struct {
	// Label names the tree in reports ("tree1L", …).
	Label string
	// Size is the number of leaves — and therefore the tree's value.
	// (The paper's "size" column counts all nodes; sched.Analyze reports
	// that for our trees.)
	Size int64
	// RootFractions is the exact depth-1 split (Table 3's last column).
	// It is normalised internally; length ≤ 7 in the paper's trees.
	RootFractions []float64
	// Alpha skews the random splits below the root: each node draws child
	// weights uᵢ^Alpha from its LCG stream. 0 means 2.0; larger values
	// give more lopsided deep splits (longer, heavier spines).
	Alpha float64
	// PosBias makes the tree *systematically* left-heavy: child i's weight
	// is additionally scaled by PosBias^i at every node, so early children
	// are consistently larger — what the paper's "Tree*L is a left-heavy
	// tree" describes, and what Tascell's keep-the-early-iterations rule
	// interacts with. 0 or 1 means no positional bias.
	PosBias float64
	// Reversed mirrors the tree (left-heavy ↔ right-heavy).
	Reversed bool
	// Seed feeds the per-node LCG.
	Seed uint32
	// NodeWork is the simulated per-node execution time in nanoseconds
	// (via sched.Coster). Zero means 1000 — the paper set each node to "the
	// average time of the task in the benchmarks".
	NodeWork int64
	// PayloadBytes is the size the workspace reports for copy-cost
	// purposes, standing in for the Sudoku status the paper's trees came
	// from. Zero means 128.
	PayloadBytes int
}

// Reverse returns the mirrored (right-heavy ↔ left-heavy) spec.
func (s Spec) Reverse() Spec {
	r := s
	r.Reversed = !s.Reversed
	if len(r.Label) > 0 {
		switch r.Label[len(r.Label)-1] {
		case 'L':
			r.Label = r.Label[:len(r.Label)-1] + "R"
		case 'R':
			r.Label = r.Label[:len(r.Label)-1] + "L"
		default:
			r.Label += "-rev"
		}
	}
	return r
}

// Tree1 uses Table 3's Tree1L depth-1 fractions
// (42.512, 25.362, 13.019, 4.936, 0.416, 11.771, 1.984).
func Tree1(size int64) Spec {
	return Spec{Label: "tree1L", Size: size, Alpha: 1.5, PosBias: 0.75,
		RootFractions: []float64{42.512, 25.362, 13.019, 4.936, 0.416, 11.771, 1.984}}
}

// Tree2 uses Table 3's Tree2L depth-1 fractions
// (74.492, 20.791, 1.106, 2.732, 0.637, 0.049, 0.193).
func Tree2(size int64) Spec {
	return Spec{Label: "tree2L", Size: size, Alpha: 1.5, PosBias: 0.55,
		RootFractions: []float64{74.492, 20.791, 1.106, 2.732, 0.637, 0.049, 0.193}}
}

// Tree3 uses Table 3's Tree3L depth-1 fractions, the most unbalanced
// (89.675, 6.891, 1.836, 0.819, 0.645, 0.026, 0.108).
func Tree3(size int64) Spec {
	return Spec{Label: "tree3L", Size: size, Alpha: 1.5, PosBias: 0.4,
		RootFractions: []float64{89.675, 6.891, 1.836, 0.819, 0.645, 0.026, 0.108}}
}

// Fig8 approximates the Figure 8 tree shape (the Sudoku input1 tree):
// depth-1 subtrees of 61.04%, 27.99% and 10.97%, skewed all the way down.
func Fig8(size int64) Spec {
	return Spec{Label: "fig8", Size: size, Alpha: 3,
		RootFractions: []float64{61.04, 27.99, 10.97}, Seed: 8}
}

// Program is the runnable tree.
type Program struct {
	spec  Spec
	roots []float64 // normalised root fractions
	work  int64
	bytes int
}

// New compiles a spec.
func New(spec Spec) *Program {
	if spec.Size < 1 {
		panic(fmt.Sprintf("synthtree: size %d < 1", spec.Size))
	}
	if len(spec.RootFractions) == 0 {
		panic("synthtree: no root fractions")
	}
	var sum float64
	for _, f := range spec.RootFractions {
		if f < 0 {
			panic("synthtree: negative fraction")
		}
		sum += f
	}
	if sum <= 0 {
		panic("synthtree: zero fraction vector")
	}
	if spec.Alpha == 0 {
		spec.Alpha = 2
	}
	p := &Program{spec: spec, work: spec.NodeWork, bytes: spec.PayloadBytes}
	for _, f := range spec.RootFractions {
		p.roots = append(p.roots, f/sum)
	}
	if p.work == 0 {
		p.work = 1000
	}
	if p.bytes == 0 {
		p.bytes = 128
	}
	return p
}

// Name implements sched.Program.
func (p *Program) Name() string { return "synthtree-" + p.spec.Label }

// Spec returns the tree's specification.
func (p *Program) Spec() Spec { return p.spec }

// node identifies a subtree: its size and its LCG stream state. The child
// apportionment is cached after the first Apply at the node.
type node struct {
	size  int64
	seed  uint32
	sizes []int64
}

type ws struct {
	bytes   int
	payload []byte
	stack   []node
}

// Clone implements sched.Workspace.
func (w *ws) Clone() sched.Workspace {
	c := &ws{bytes: w.bytes, stack: make([]node, len(w.stack), len(w.stack)+8)}
	copy(c.stack, w.stack)
	if w.payload != nil {
		c.payload = append([]byte(nil), w.payload...)
	}
	return c
}

// Bytes implements sched.Workspace.
func (w *ws) Bytes() int { return w.bytes }

// CopyFrom implements sched.Reusable.
func (w *ws) CopyFrom(src sched.Workspace) {
	s := src.(*ws)
	w.bytes = s.bytes
	w.stack = append(w.stack[:0], s.stack...)
	if s.payload != nil {
		w.payload = append(w.payload[:0], s.payload...)
	}
}

func (w *ws) top() node { return w.stack[len(w.stack)-1] }

// Root implements sched.Program.
func (p *Program) Root() sched.Workspace {
	return &ws{
		bytes:   p.bytes,
		payload: make([]byte, p.bytes),
		stack:   []node{{size: p.spec.Size, seed: p.spec.Seed}},
	}
}

// Terminal implements sched.Program: a subtree of size 1 is a leaf worth 1,
// so the tree total equals Spec.Size exactly.
func (p *Program) Terminal(w sched.Workspace, depth int) (int64, bool) {
	if w.(*ws).top().size == 1 {
		return 1, true
	}
	return 0, false
}

// Moves implements sched.Program.
func (p *Program) Moves(w sched.Workspace, depth int) int { return len(p.roots) }

// childSizes apportions a node's size among its children: the exact root
// fractions at depth 0, LCG-drawn uᵢ^Alpha weights below. Deterministic in
// (size, seed, depth).
func (p *Program) childSizes(n node, depth int) []int64 {
	k := len(p.roots)
	weights := make([]float64, k)
	if depth == 0 {
		copy(weights, p.roots)
	} else {
		x := n.seed
		bias := 1.0
		for i := range weights {
			x = x*lcgA + lcgC // mod 2^32 implicit in uint32 arithmetic
			u := (float64(x) + 1) / float64(lcgM)
			weights[i] = math.Pow(u, p.spec.Alpha) * bias
			if p.spec.PosBias > 0 && p.spec.PosBias < 1 {
				bias *= p.spec.PosBias
			}
		}
	}
	if p.spec.Reversed {
		for i, j := 0, k-1; i < j; i, j = i+1, j-1 {
			weights[i], weights[j] = weights[j], weights[i]
		}
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	rem := n.size
	sizes := make([]int64, k)
	type frac struct {
		i int
		f float64
	}
	fr := make([]frac, k)
	var assigned int64
	for i, w := range weights {
		exact := float64(rem) * w / sum
		sizes[i] = int64(exact)
		fr[i] = frac{i: i, f: exact - float64(sizes[i])}
		assigned += sizes[i]
	}
	// Largest remainder: hand out the leftover units.
	for assigned < rem {
		best := 0
		for i := 1; i < k; i++ {
			if fr[i].f > fr[best].f {
				best = i
			}
		}
		sizes[fr[best].i]++
		fr[best].f = -1
		assigned++
	}
	// A child as large as its parent would recurse forever; shave one unit
	// off to a neighbour so every child is strictly smaller.
	if rem > 1 {
		for i, s := range sizes {
			if s == rem {
				sizes[i]--
				sizes[(i+1)%k]++
				break
			}
		}
	}
	return sizes
}

// Apply implements sched.Program: descend into child m if it is non-empty.
func (p *Program) Apply(w sched.Workspace, depth, m int) bool {
	s := w.(*ws)
	top := &s.stack[len(s.stack)-1]
	if top.sizes == nil {
		top.sizes = p.childSizes(*top, depth)
	}
	if top.sizes[m] == 0 {
		return false
	}
	// Mirrored trees must assign mirrored children identical subtree seeds,
	// so the child stream is keyed by the canonical (left-heavy) index.
	ci := m
	if p.spec.Reversed {
		ci = len(p.roots) - 1 - m
	}
	childSeed := top.seed*lcgA + lcgC + uint32(ci)*2654435761
	s.stack = append(s.stack, node{size: top.sizes[m], seed: childSeed})
	return true
}

// Undo implements sched.Program.
func (p *Program) Undo(w sched.Workspace, depth, m int) {
	s := w.(*ws)
	s.stack = s.stack[:len(s.stack)-1]
}

// NodeCost implements sched.Coster: constant per-node work.
func (p *Program) NodeCost(w sched.Workspace, depth int) int64 { return p.work }
