// Package bnb is the branch-and-bound workload family: seeded 0/1 knapsack
// and a TSP-lite tour search, both maximisation problems pruned by a shared
// incumbent bound. It is the first family where inter-worker communication
// is part of the workload: every worker reads the incumbent to prune and
// CAS-publishes to tighten it, so scheduler decisions change which subtrees
// are ever explored.
//
// # The incumbent protocol, and why Value stays exact
//
// Engines compute Value = Σ over leaves — a sum, not a max. The family
// encodes the running maximum as telescoping deltas:
//
//   - A complete candidate with objective cand runs a CAS-improve loop on
//     the incumbent; the successful improver's leaf value is cand − old.
//     The successful improvements form a strictly increasing chain starting
//     at 0, so Σ deltas = final incumbent, independent of order, worker
//     count, or which worker published which improvement.
//   - A node whose upper bound UB(ws) cannot beat the current incumbent is
//     a value-0 leaf (pruned). Pruning is value-sound: if a pruned subtree
//     contained the global optimum OPT, then OPT ≤ UB ≤ incumbent-then ≤
//     incumbent-final, and the incumbent only ever holds achievable
//     objectives, so incumbent-final = OPT anyway.
//
// Hence every run — serial oracle, any engine, any schedule — returns
// exactly the instance's optimum, while the *work done* (nodes visited,
// tasks created) varies with how fast good incumbents propagate. Under the
// deterministic Sim platform workers interleave deterministically, so
// seeded reruns are byte-identical, incumbent races included.
//
// The incumbent lives in per-run state allocated by Root() (shared by all
// of that run's workspace clones), so a Program instance can be reused
// across sequential runs and raced by concurrent ones. Like dagflow, the
// shared state makes the family unsuitable for engines that re-execute
// moves (Tascell); the seven pool engines and the serial oracle run it.
package bnb

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"adaptivetc/internal/sched"
)

// incumbent is the shared bound of one run.
type incumbent struct{ best atomic.Int64 }

// publish CAS-improves the incumbent with cand and returns the leaf delta:
// cand−old for the successful improver, 0 otherwise.
func (inc *incumbent) publish(cand int64) int64 {
	for {
		cur := inc.best.Load()
		if cand <= cur {
			return 0
		}
		if inc.best.CompareAndSwap(cur, cand) {
			return cand - cur
		}
	}
}

// ---------------------------------------------------------------- knapsack

// Knapsack is a seeded 0/1 knapsack instance: maximise Σ values of the
// chosen items subject to Σ weights ≤ capacity. Depth d decides item d;
// move 0 skips, move 1 takes (illegal when over capacity). The upper bound
// at depth d is current value + Σ values of the undecided items.
type Knapsack struct {
	name      string
	weights   []int64
	values    []int64
	capacity  int64
	suffixVal []int64 // suffixVal[d] = Σ values[d:]
	lastInc   atomic.Pointer[incumbent]
}

type knapWS struct {
	inc    *incumbent
	taken  []bool
	weight int64
	value  int64
}

func (w *knapWS) Clone() sched.Workspace {
	c := &knapWS{inc: w.inc, taken: make([]bool, len(w.taken)), weight: w.weight, value: w.value}
	copy(c.taken, w.taken)
	return c
}

func (w *knapWS) Bytes() int { return len(w.taken) + 16 }

// NewKnapsack builds a seeded n-item instance. capacity ≤ 0 means 40% of
// the total weight — tight enough that pruning matters, loose enough that
// the optimum is nontrivial. n is clamped to ≥1.
func NewKnapsack(n int, capacity int64, seed int64) *Knapsack {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	k := &Knapsack{
		weights: make([]int64, n),
		values:  make([]int64, n),
	}
	var totalW int64
	for i := 0; i < n; i++ {
		k.weights[i] = 1 + rng.Int63n(30)
		k.values[i] = 1 + rng.Int63n(50)
		totalW += k.weights[i]
	}
	if capacity <= 0 {
		capacity = totalW * 2 / 5
		if capacity < 1 {
			capacity = 1
		}
	}
	k.capacity = capacity
	k.suffixVal = make([]int64, n+1)
	for i := n - 1; i >= 0; i-- {
		k.suffixVal[i] = k.suffixVal[i+1] + k.values[i]
	}
	k.name = fmt.Sprintf("bnb-knapsack(n=%d,cap=%d)", n, capacity)
	return k
}

// Name implements sched.Program.
func (k *Knapsack) Name() string { return k.name }

// Root implements sched.Program, starting this run's incumbent at 0.
func (k *Knapsack) Root() sched.Workspace {
	inc := &incumbent{}
	k.lastInc.Store(inc)
	return &knapWS{inc: inc, taken: make([]bool, 0, len(k.weights))}
}

// Terminal implements sched.Program: a full decision vector publishes its
// candidate (leaf value = improvement delta); an interior node whose upper
// bound cannot beat the incumbent is a value-0 pruned leaf.
func (k *Knapsack) Terminal(w sched.Workspace, depth int) (int64, bool) {
	s := w.(*knapWS)
	if depth == len(k.weights) {
		return s.inc.publish(s.value), true
	}
	if s.value+k.suffixVal[depth] <= s.inc.best.Load() {
		return 0, true // pruned: nothing below can improve the incumbent
	}
	return 0, false
}

// Moves implements sched.Program: skip or take item `depth`.
func (k *Knapsack) Moves(w sched.Workspace, depth int) int { return 2 }

// Apply implements sched.Program.
func (k *Knapsack) Apply(w sched.Workspace, depth, m int) bool {
	s := w.(*knapWS)
	take := m == 1
	if take {
		if s.weight+k.weights[depth] > k.capacity {
			return false
		}
		s.weight += k.weights[depth]
		s.value += k.values[depth]
	}
	s.taken = append(s.taken, take)
	return true
}

// Undo implements sched.Program.
func (k *Knapsack) Undo(w sched.Workspace, depth, m int) {
	s := w.(*knapWS)
	n := len(s.taken) - 1
	if s.taken[n] {
		s.weight -= k.weights[depth]
		s.value -= k.values[depth]
	}
	s.taken = s.taken[:n]
}

// LastIncumbent returns the final incumbent of the most recent Root() call
// (the run's optimum once that run completed), or 0 before any run.
func (k *Knapsack) LastIncumbent() int64 {
	if inc := k.lastInc.Load(); inc != nil {
		return inc.best.Load()
	}
	return 0
}

// ---------------------------------------------------------------- TSP-lite

// TSP is a seeded symmetric TSP-lite instance over n cities: tours start
// and end at city 0, depth d places the d+1-th city, and the objective is
// the *savings* form C0 − tour cost with C0 = n·maxEdge + 1, so every tour
// scores ≥ 1 and "maximise savings" = "minimise cost" — which keeps the
// telescoping-delta encoding a maximisation like knapsack. The bound at an
// interior node assumes every remaining edge costs minEdge.
type TSP struct {
	name    string
	n       int
	dist    [][]int64
	c0      int64
	minEdge int64
	lastInc atomic.Pointer[incumbent]
}

type tspWS struct {
	inc     *incumbent
	perm    []int32
	visited uint32
	cost    int64
}

func (w *tspWS) Clone() sched.Workspace {
	c := &tspWS{inc: w.inc, perm: make([]int32, len(w.perm)), visited: w.visited, cost: w.cost}
	copy(c.perm, w.perm)
	return c
}

func (w *tspWS) Bytes() int { return len(w.perm)*4 + 16 }

// NewTSP builds a seeded n-city instance (clamped to 2 ≤ n ≤ 16; the
// visited set is a 32-bit mask and the family is a correctness workload,
// not a solver).
func NewTSP(n int, seed int64) *TSP {
	if n < 2 {
		n = 2
	}
	if n > 16 {
		n = 16
	}
	rng := rand.New(rand.NewSource(seed))
	t := &TSP{n: n, dist: make([][]int64, n)}
	for i := range t.dist {
		t.dist[i] = make([]int64, n)
	}
	var maxEdge int64
	t.minEdge = 1 << 30
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := 1 + rng.Int63n(99)
			t.dist[i][j], t.dist[j][i] = d, d
			if d > maxEdge {
				maxEdge = d
			}
			if d < t.minEdge {
				t.minEdge = d
			}
		}
	}
	t.c0 = int64(n)*maxEdge + 1
	t.name = fmt.Sprintf("bnb-tsp(n=%d)", n)
	return t
}

// Name implements sched.Program.
func (t *TSP) Name() string { return t.name }

// Root implements sched.Program: the tour starts at city 0.
func (t *TSP) Root() sched.Workspace {
	inc := &incumbent{}
	t.lastInc.Store(inc)
	return &tspWS{inc: inc, perm: []int32{0}, visited: 1}
}

// Terminal implements sched.Program: a complete permutation closes the tour
// and publishes its savings; an interior node prunes when even all-minEdge
// remaining legs cannot beat the incumbent.
func (t *TSP) Terminal(w sched.Workspace, depth int) (int64, bool) {
	s := w.(*tspWS)
	if len(s.perm) == t.n {
		tour := s.cost + t.dist[s.perm[t.n-1]][0]
		return s.inc.publish(t.c0 - tour), true
	}
	remaining := int64(t.n - len(s.perm) + 1) // legs still to drive, incl. closing
	if t.c0-(s.cost+remaining*t.minEdge) <= s.inc.best.Load() {
		return 0, true // pruned
	}
	return 0, false
}

// Moves implements sched.Program: candidate next cities 1..n-1.
func (t *TSP) Moves(w sched.Workspace, depth int) int { return t.n - 1 }

// Apply implements sched.Program.
func (t *TSP) Apply(w sched.Workspace, depth, m int) bool {
	s := w.(*tspWS)
	city := int32(m + 1)
	if s.visited&(1<<uint(city)) != 0 {
		return false
	}
	s.cost += t.dist[s.perm[len(s.perm)-1]][city]
	s.perm = append(s.perm, city)
	s.visited |= 1 << uint(city)
	return true
}

// Undo implements sched.Program.
func (t *TSP) Undo(w sched.Workspace, depth, m int) {
	s := w.(*tspWS)
	n := len(s.perm) - 1
	city := s.perm[n]
	s.perm = s.perm[:n]
	s.visited &^= 1 << uint(city)
	s.cost -= t.dist[s.perm[n-1]][city]
}

// LastIncumbent returns the final incumbent of the most recent Root() call.
func (t *TSP) LastIncumbent() int64 {
	if inc := t.lastInc.Load(); inc != nil {
		return inc.best.Load()
	}
	return 0
}
