package fib

import (
	"testing"

	"adaptivetc/internal/progtest"
	"adaptivetc/internal/sched"
)

func TestFibClosedForm(t *testing.T) {
	want := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n, w := range want {
		if got := Fib(n); got != w {
			t.Errorf("Fib(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestSerialMatchesClosedForm(t *testing.T) {
	for n := 0; n <= 20; n++ {
		res, err := sched.Serial{}.Run(New(n), sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != Fib(n) {
			t.Errorf("recursive fib(%d) = %d, want %d", n, res.Value, Fib(n))
		}
	}
}

func TestNoTaskprivate(t *testing.T) {
	if New(10).Root().Bytes() != 0 {
		t.Error("fib must report zero taskprivate bytes (Figure 4 caption)")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(10)
	w := p.Root()
	p.Apply(w, 0, 0)
	c := w.Clone()
	p.Apply(c, 1, 1)
	if got := w.(*ws).top(); got != 9 {
		t.Fatalf("original top = %d after clone mutation, want 9", got)
	}
}

func TestTreeSize(t *testing.T) {
	// The fib call tree has a known node count: T(n) = 2*fib(n+1) - 1.
	st := sched.Analyze(New(12), 0)
	want := 2*Fib(13) - 1
	if st.Nodes != want {
		t.Fatalf("fib(12) tree nodes = %d, want %d", st.Nodes, want)
	}
}

func TestConformance(t *testing.T) {
	progtest.Conformance(t, New(13))
}
