// Package fib is the paper's Fib(n) benchmark: the doubly recursive
// Fibonacci function, the classic stress test for spawn overhead because
// there is almost no computation per task. Fib has no taskprivate data
// (Figure 4's caption excludes it from the Cilk-SYNCHED comparison), so its
// workspace reports zero payload bytes and engines charge no copying.
//
// The computation is phrased as a leaf sum: fib(n) = Σ of fib(0)=0 and
// fib(1)=1 over the leaves of the call tree, which is exactly the recursive
// definition.
package fib

import (
	"fmt"

	"adaptivetc/internal/sched"
)

// Program computes the N-th Fibonacci number recursively.
type Program struct {
	N int
}

// New returns the Fib(n) benchmark.
func New(n int) *Program {
	if n < 0 {
		panic(fmt.Sprintf("fib: negative n %d", n))
	}
	return &Program{N: n}
}

// Name implements sched.Program.
func (p *Program) Name() string { return fmt.Sprintf("fib(%d)", p.N) }

// Fib returns the expected answer, for tests and harness validation.
func Fib(n int) int64 {
	a, b := int64(0), int64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

type ws struct {
	stack []int // stack[len-1] is the current subproblem's n
}

// Clone implements sched.Workspace.
func (w *ws) Clone() sched.Workspace {
	c := &ws{stack: make([]int, len(w.stack), len(w.stack)+8)}
	copy(c.stack, w.stack)
	return c
}

// Bytes implements sched.Workspace. Fib carries no taskprivate payload.
func (w *ws) Bytes() int { return 0 }

func (w *ws) top() int { return w.stack[len(w.stack)-1] }

// Root implements sched.Program.
func (p *Program) Root() sched.Workspace { return &ws{stack: []int{p.N}} }

// Terminal implements sched.Program.
func (p *Program) Terminal(w sched.Workspace, depth int) (int64, bool) {
	n := w.(*ws).top()
	if n < 2 {
		return int64(n), true
	}
	return 0, false
}

// Moves implements sched.Program: fib(n) spawns fib(n-1) and fib(n-2).
func (p *Program) Moves(w sched.Workspace, depth int) int { return 2 }

// Apply implements sched.Program.
func (p *Program) Apply(w sched.Workspace, depth, m int) bool {
	s := w.(*ws)
	s.stack = append(s.stack, s.top()-1-m)
	return true
}

// Undo implements sched.Program.
func (p *Program) Undo(w sched.Workspace, depth, m int) {
	s := w.(*ws)
	s.stack = s.stack[:len(s.stack)-1]
}
