// Package firstsol is the first-solution-wins workload family: searches
// whose leaves carry a *witness encoding* of a complete solution rather
// than a count. Run with Options.FirstSolution (or JobSpec.FirstSolution),
// the first worker to reach a solution leaf claims its witness as the run's
// Value and the cooperative-stop plane cancels the siblings; the families
// provide Verify so any returned witness can be checked independently of
// which solution the schedule happened to find first.
//
// Witness encodings are strictly positive (a +1 offset is baked in), so
// "nonzero leaf" is exactly "solution found" and a search with no solution
// completes normally with Value 0. The programs are also well-defined
// without FirstSolution — Value is then the order-independent sum of all
// solution witnesses — so they ride the generic differential rows too.
package firstsol

import (
	"fmt"
	"math/rand"

	"adaptivetc/internal/sched"
)

// ----------------------------------------------------------------- queens

// Queens is first-solution n-queens: a solution leaf's value encodes the
// column of every row in base n+1, offset by +1 per digit so any witness is
// positive. n is clamped to [1, 12] (13^12 still fits int64 comfortably).
type Queens struct {
	n    int
	name string
}

type queensWS struct{ cols []int8 }

func (w *queensWS) Clone() sched.Workspace {
	c := &queensWS{cols: make([]int8, len(w.cols))}
	copy(c.cols, w.cols)
	return c
}

func (w *queensWS) Bytes() int { return len(w.cols) }

// NewQueens builds the n-queens first-solution instance.
func NewQueens(n int) *Queens {
	if n < 1 {
		n = 1
	}
	if n > 12 {
		n = 12
	}
	return &Queens{n: n, name: fmt.Sprintf("first-nqueens(%d)", n)}
}

// Name implements sched.Program.
func (q *Queens) Name() string { return q.name }

// Root implements sched.Program.
func (q *Queens) Root() sched.Workspace {
	return &queensWS{cols: make([]int8, 0, q.n)}
}

// Terminal implements sched.Program: a full placement is a solution leaf
// carrying its witness.
func (q *Queens) Terminal(w sched.Workspace, depth int) (int64, bool) {
	s := w.(*queensWS)
	if len(s.cols) == q.n {
		return EncodeQueens(s.cols), true
	}
	return 0, false
}

// Moves implements sched.Program: one candidate column per row.
func (q *Queens) Moves(w sched.Workspace, depth int) int { return q.n }

// Apply implements sched.Program.
func (q *Queens) Apply(w sched.Workspace, depth, m int) bool {
	s := w.(*queensWS)
	row := len(s.cols)
	for r, c := range s.cols {
		if int(c) == m || row-r == m-int(c) || row-r == int(c)-m {
			return false
		}
	}
	s.cols = append(s.cols, int8(m))
	return true
}

// Undo implements sched.Program.
func (q *Queens) Undo(w sched.Workspace, depth, m int) {
	s := w.(*queensWS)
	s.cols = s.cols[:len(s.cols)-1]
}

// Verify reports whether witness decodes to a valid complete placement for
// this instance.
func (q *Queens) Verify(witness int64) bool { return VerifyQueens(q.n, witness) }

// EncodeQueens packs a complete column vector into a positive witness:
// Σ (cols[i]+1)·(n+1)^i with n = len(cols).
func EncodeQueens(cols []int8) int64 {
	n := int64(len(cols))
	v, mul := int64(0), int64(1)
	for _, c := range cols {
		v += (int64(c) + 1) * mul
		mul *= n + 1
	}
	return v
}

// VerifyQueens decodes witness (the EncodeQueens packing) and checks it is
// a valid n-queens placement. A zero or negative witness never verifies.
func VerifyQueens(n int, witness int64) bool {
	if witness <= 0 || n < 1 {
		return false
	}
	cols := make([]int8, 0, n)
	base := int64(n + 1)
	for i := 0; i < n; i++ {
		d := witness % base
		if d < 1 || d > int64(n) {
			return false
		}
		cols = append(cols, int8(d-1))
		witness /= base
	}
	if witness != 0 {
		return false
	}
	for r2 := 1; r2 < n; r2++ {
		for r1 := 0; r1 < r2; r1++ {
			c1, c2 := int(cols[r1]), int(cols[r2])
			if c1 == c2 || r2-r1 == c2-c1 || r2-r1 == c1-c2 {
				return false
			}
		}
	}
	return true
}

// -------------------------------------------------------------------- SAT

// SAT is first-solution planted 3-SAT: a seeded formula generated around a
// planted assignment (so it is satisfiable by construction), searched by
// assigning variables in order with clause-falsification pruning. A
// solution leaf's witness is the assignment bits +1.
type SAT struct {
	name    string
	nvars   int
	clauses [][3]lit
}

// lit is one literal: variable index and required polarity.
type lit struct {
	v   int8
	neg bool
}

type satWS struct{ assign []bool }

func (w *satWS) Clone() sched.Workspace {
	c := &satWS{assign: make([]bool, len(w.assign))}
	copy(c.assign, w.assign)
	return c
}

func (w *satWS) Bytes() int { return len(w.assign) }

// NewSAT builds a planted instance with n variables (clamped to [3, 20])
// and m clauses (m ≤ 0 means 4·n).
func NewSAT(n, m int, seed int64) *SAT {
	if n < 3 {
		n = 3
	}
	if n > 20 {
		n = 20
	}
	if m <= 0 {
		m = 4 * n
	}
	rng := rand.New(rand.NewSource(seed))
	planted := make([]bool, n)
	for i := range planted {
		planted[i] = rng.Intn(2) == 1
	}
	s := &SAT{nvars: n, clauses: make([][3]lit, m)}
	for ci := range s.clauses {
		vars := rng.Perm(n)[:3]
		var cl [3]lit
		for li, v := range vars {
			// Random polarity, but force literal 0 to agree with the
			// planted assignment so every clause — hence the formula — is
			// satisfied by it.
			neg := rng.Intn(2) == 1
			if li == 0 {
				neg = planted[v] == false
				// literal is "¬v" when planted[v] is false: ¬v is then true.
			}
			cl[li] = lit{v: int8(v), neg: neg}
		}
		s.clauses[ci] = cl
	}
	s.name = fmt.Sprintf("first-sat(v=%d,c=%d)", n, m)
	return s
}

// Name implements sched.Program.
func (s *SAT) Name() string { return s.name }

// Root implements sched.Program.
func (s *SAT) Root() sched.Workspace {
	return &satWS{assign: make([]bool, 0, s.nvars)}
}

// litTrue evaluates l under a prefix assignment; ok is false when l's
// variable is not yet assigned.
func litTrue(l lit, assign []bool) (val, ok bool) {
	if int(l.v) >= len(assign) {
		return false, false
	}
	return assign[l.v] != l.neg, true
}

// Terminal implements sched.Program: a fully-falsified clause makes the
// node a dead (value-0) leaf; a complete assignment that reached this far
// satisfies every clause and is a solution leaf carrying its witness.
func (s *SAT) Terminal(w sched.Workspace, depth int) (int64, bool) {
	ws := w.(*satWS)
	for _, cl := range s.clauses {
		dead := true
		for _, l := range cl {
			val, ok := litTrue(l, ws.assign)
			if !ok || val {
				dead = false
				break
			}
		}
		if dead {
			return 0, true
		}
	}
	if len(ws.assign) == s.nvars {
		return EncodeSAT(ws.assign), true
	}
	return 0, false
}

// Moves implements sched.Program: assign the next variable false (0) or
// true (1).
func (s *SAT) Moves(w sched.Workspace, depth int) int { return 2 }

// Apply implements sched.Program.
func (s *SAT) Apply(w sched.Workspace, depth, m int) bool {
	ws := w.(*satWS)
	ws.assign = append(ws.assign, m == 1)
	return true
}

// Undo implements sched.Program.
func (s *SAT) Undo(w sched.Workspace, depth, m int) {
	ws := w.(*satWS)
	ws.assign = ws.assign[:len(ws.assign)-1]
}

// Verify reports whether witness decodes to an assignment satisfying every
// clause of this instance.
func (s *SAT) Verify(witness int64) bool {
	if witness <= 0 {
		return false
	}
	bits := witness - 1
	if bits >= 1<<uint(s.nvars) {
		return false
	}
	assign := make([]bool, s.nvars)
	for i := range assign {
		assign[i] = bits&(1<<uint(i)) != 0
	}
	for _, cl := range s.clauses {
		sat := false
		for _, l := range cl {
			if assign[l.v] != l.neg {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// EncodeSAT packs a complete assignment into a positive witness: the
// assignment bits plus 1.
func EncodeSAT(assign []bool) int64 {
	var bits int64
	for i, b := range assign {
		if b {
			bits |= 1 << uint(i)
		}
	}
	return bits + 1
}
