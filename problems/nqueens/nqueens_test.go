package nqueens

import (
	"testing"
	"testing/quick"

	"adaptivetc/internal/progtest"
	"adaptivetc/internal/sched"
)

func countSerial(t *testing.T, p *Program) int64 {
	t.Helper()
	res, err := sched.Serial{}.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Value
}

func TestKnownCounts(t *testing.T) {
	for n := 1; n <= 10; n++ {
		want := Solutions(n)
		if got := countSerial(t, NewArray(n)); got != want {
			t.Errorf("array(%d) = %d, want %d", n, got, want)
		}
		if got := countSerial(t, NewCompute(n)); got != want {
			t.Errorf("compute(%d) = %d, want %d", n, got, want)
		}
	}
}

// naive is an independent implementation used as an oracle.
func naive(n int) int64 {
	pos := make([]int, n)
	var rec func(row int) int64
	rec = func(row int) int64 {
		if row == n {
			return 1
		}
		var sum int64
		for c := 0; c < n; c++ {
			ok := true
			for r := 0; r < row; r++ {
				if pos[r] == c || pos[r]-r == c-row || pos[r]+r == c+row {
					ok = false
					break
				}
			}
			if ok {
				pos[row] = c
				sum += rec(row + 1)
			}
		}
		return sum
	}
	return rec(0)
}

func TestAgainstNaive(t *testing.T) {
	for n := 1; n <= 9; n++ {
		want := naive(n)
		if got := countSerial(t, NewArray(n)); got != want {
			t.Errorf("array(%d) = %d, naive says %d", n, got, want)
		}
	}
}

func TestWorkspaceCloneIsolation(t *testing.T) {
	p := NewArray(8)
	ws := p.Root()
	if !p.Apply(ws, 0, 0) {
		t.Fatal("first move illegal")
	}
	clone := ws.Clone()
	if !p.Apply(clone, 1, 2) {
		t.Fatal("clone move illegal")
	}
	// The original must not see the clone's queen: placing at the same
	// spot must still succeed.
	if !p.Apply(ws, 1, 2) {
		t.Fatal("clone mutation leaked into the original workspace")
	}
}

func TestApplyUndoRoundTrip(t *testing.T) {
	check := func(p *Program) func(moves []uint8) bool {
		return func(moves []uint8) bool {
			ws := p.Root()
			ref := p.Root()
			depth := 0
			var applied []int
			for _, mv := range moves {
				m := int(mv) % p.N
				if p.Apply(ws, depth, m) {
					applied = append(applied, m)
					depth++
					if depth == p.N {
						break
					}
				}
			}
			for i := len(applied) - 1; i >= 0; i-- {
				depth--
				p.Undo(ws, depth, applied[i])
			}
			// After undoing everything, the workspace must accept exactly
			// the same root-level moves as a fresh one.
			for m := 0; m < p.N; m++ {
				a := p.Apply(ws, 0, m)
				b := p.Apply(ref, 0, m)
				if a != b {
					return false
				}
				if a {
					p.Undo(ws, 0, m)
					p.Undo(ref, 0, m)
				}
			}
			return true
		}
	}
	for _, p := range []*Program{NewArray(6), NewCompute(6)} {
		if err := quick.Check(check(p), &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestBytes(t *testing.T) {
	if b := NewArray(16).Root().Bytes(); b <= 16 {
		t.Errorf("array workspace bytes = %d, want conflict arrays included", b)
	}
	if b := NewCompute(16).Root().Bytes(); b != 16 {
		t.Errorf("compute workspace bytes = %d, want 16 (just the board)", b)
	}
}

func TestReusableCopyFrom(t *testing.T) {
	for _, p := range []*Program{NewArray(5), NewCompute(5)} {
		ws := p.Root()
		p.Apply(ws, 0, 2)
		dst := p.Root().(sched.Reusable)
		dst.CopyFrom(ws)
		// dst must now refuse column 2 at row 1 diag-conflicts etc. exactly
		// like a clone would.
		c := ws.Clone()
		for m := 0; m < 5; m++ {
			a := p.Apply(dst, 1, m)
			b := p.Apply(c, 1, m)
			if a != b {
				t.Fatalf("%s: CopyFrom disagrees with Clone at move %d", p.Name(), m)
			}
			if a {
				p.Undo(dst, 1, m)
				p.Undo(c, 1, m)
			}
		}
	}
}

func TestNodeCost(t *testing.T) {
	pa, pc := NewArray(8), NewCompute(8)
	if pa.NodeCost(pa.Root(), 4) != 0 {
		t.Error("array variant should have no extra node cost")
	}
	if pc.NodeCost(pc.Root(), 4) == 0 {
		t.Error("compute variant should charge for conflict re-scanning")
	}
}

func TestConformance(t *testing.T) {
	progtest.Conformance(t, NewArray(6))
	progtest.Conformance(t, NewCompute(6))
}
