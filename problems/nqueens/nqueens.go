// Package nqueens provides the paper's two n-queens benchmarks (Table 1):
//
//   - Nqueen-array(n): keeps per-column and per-diagonal conflict arrays in
//     the workspace, so a move's legality is three array reads. More memory,
//     less time — and a bigger taskprivate payload to copy on every spawn,
//     which is why workspace copying dominates Cilk's overhead here.
//   - Nqueen-compute(n): keeps only the queen positions and re-scans the
//     placed queens to detect conflicts. More time per node, less memory —
//     here task creation and deque management dominate instead.
//
// The chessboard is the paper's canonical taskprivate example:
//
//	cilk int nqueens(int depth, int n, char* x)
//	    taskprivate: (*x) (n * sizeof(char));
package nqueens

import (
	"fmt"

	"adaptivetc/internal/sched"
)

// Variant selects the array or compute implementation.
type Variant int

const (
	// Array is Nqueen-array: conflict arrays in the workspace.
	Array Variant = iota
	// Compute is Nqueen-compute: conflicts recomputed from positions.
	Compute
)

// Program counts the placements of N non-attacking queens.
type Program struct {
	N       int
	Variant Variant
}

// NewArray returns Nqueen-array(n).
func NewArray(n int) *Program { return newProgram(n, Array) }

// NewCompute returns Nqueen-compute(n).
func NewCompute(n int) *Program { return newProgram(n, Compute) }

func newProgram(n int, v Variant) *Program {
	if n < 1 {
		panic(fmt.Sprintf("nqueens: invalid board size %d", n))
	}
	return &Program{N: n, Variant: v}
}

// Name implements sched.Program.
func (p *Program) Name() string {
	if p.Variant == Compute {
		return fmt.Sprintf("nqueen-compute(%d)", p.N)
	}
	return fmt.Sprintf("nqueen-array(%d)", p.N)
}

// Solutions returns the known solution counts for small boards (0 for
// boards beyond the table); used by tests.
func Solutions(n int) int64 {
	known := []int64{1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2680, 14200, 73712, 365596}
	if n < len(known) {
		return known[n]
	}
	return 0
}

// arrayWS is the Nqueen-array workspace: positions plus conflict arrays.
type arrayWS struct {
	n    int
	x    []int8 // x[row] = column of the queen on row
	cols []bool
	d1   []bool // row+col diagonals
	d2   []bool // row-col+n-1 anti-diagonals
}

// Clone implements sched.Workspace.
func (w *arrayWS) Clone() sched.Workspace {
	c := &arrayWS{
		n:    w.n,
		x:    append([]int8(nil), w.x...),
		cols: append([]bool(nil), w.cols...),
		d1:   append([]bool(nil), w.d1...),
		d2:   append([]bool(nil), w.d2...),
	}
	return c
}

// Bytes implements sched.Workspace: the taskprivate payload is the board
// and its conflict arrays.
func (w *arrayWS) Bytes() int { return len(w.x) + len(w.cols) + len(w.d1) + len(w.d2) }

// CopyFrom implements sched.Reusable for the SYNCHED pool.
func (w *arrayWS) CopyFrom(src sched.Workspace) {
	s := src.(*arrayWS)
	w.n = s.n
	copy(w.x, s.x)
	copy(w.cols, s.cols)
	copy(w.d1, s.d1)
	copy(w.d2, s.d2)
}

// computeWS is the Nqueen-compute workspace: positions only.
type computeWS struct {
	n int
	x []int8
}

// Clone implements sched.Workspace.
func (w *computeWS) Clone() sched.Workspace {
	return &computeWS{n: w.n, x: append([]int8(nil), w.x...)}
}

// Bytes implements sched.Workspace: just the chessboard, as in the paper's
// taskprivate declaration.
func (w *computeWS) Bytes() int { return len(w.x) }

// CopyFrom implements sched.Reusable.
func (w *computeWS) CopyFrom(src sched.Workspace) {
	s := src.(*computeWS)
	w.n = s.n
	copy(w.x, s.x)
}

// Root implements sched.Program.
func (p *Program) Root() sched.Workspace {
	if p.Variant == Compute {
		return &computeWS{n: p.N, x: make([]int8, p.N)}
	}
	return &arrayWS{
		n:    p.N,
		x:    make([]int8, p.N),
		cols: make([]bool, p.N),
		d1:   make([]bool, 2*p.N-1),
		d2:   make([]bool, 2*p.N-1),
	}
}

// Terminal implements sched.Program: all N queens placed is a solution.
func (p *Program) Terminal(w sched.Workspace, depth int) (int64, bool) {
	if depth == p.N {
		return 1, true
	}
	return 0, false
}

// Moves implements sched.Program: one candidate column per move.
func (p *Program) Moves(w sched.Workspace, depth int) int { return p.N }

// Apply implements sched.Program: place a queen on (depth, m) if legal.
func (p *Program) Apply(w sched.Workspace, depth, m int) bool {
	switch ws := w.(type) {
	case *arrayWS:
		i1 := depth + m
		i2 := depth - m + ws.n - 1
		if ws.cols[m] || ws.d1[i1] || ws.d2[i2] {
			return false
		}
		ws.x[depth] = int8(m)
		ws.cols[m], ws.d1[i1], ws.d2[i2] = true, true, true
		return true
	case *computeWS:
		for r := 0; r < depth; r++ {
			c := int(ws.x[r])
			if c == m || r+c == depth+m || r-c == depth-m {
				return false
			}
		}
		ws.x[depth] = int8(m)
		return true
	default:
		panic("nqueens: foreign workspace")
	}
}

// Undo implements sched.Program.
func (p *Program) Undo(w sched.Workspace, depth, m int) {
	if ws, ok := w.(*arrayWS); ok {
		ws.cols[m] = false
		ws.d1[depth+m] = false
		ws.d2[depth-m+ws.n-1] = false
	}
}

// NodeCost implements sched.Coster for the compute variant: re-scanning the
// placed queens for each of the N candidate columns costs work proportional
// to N×depth.
func (p *Program) NodeCost(w sched.Workspace, depth int) int64 {
	if p.Variant != Compute {
		return 0
	}
	return int64(p.N) * int64(depth) * 2
}
