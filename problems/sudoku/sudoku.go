// Package sudoku is the paper's Sudoku benchmark (Appendix A): count all
// solutions of a k²×k² grid (k=3 is the usual 9×9; k=2 is the 4×4 Shidoku
// whose empty grid famously has 288 solutions, a handy absolute oracle).
// The solver fills the empty cells in row-major order, branching on the k²
// candidate digits; the grid plus its row/column/box bitmasks is the
// taskprivate workspace.
//
// The paper evaluates three inputs: a balanced tree and two unbalanced
// inputs (input1 grows a 1.9-billion-node tree of depth 63 in Figure 8).
// Those inputs were not published, so Balanced, Input1 and Input2 are
// crafted here by deleting cells from a canonical solved grid. Deleting a
// front-loaded block empties the cells the solver fills first, so the
// branching spreads across the shallow levels — a bushy, balanced tree.
// Deleting uniformly leaves the early cells heavily constrained: the tree
// becomes a long spine where one child holds most of the total at every
// level — exactly the heavy-path shape of Figure 8, under which any fixed
// cut-off starves. Use sched.Analyze and experiments.HeavyPath to inspect
// the shapes.
package sudoku

import (
	"fmt"
	"math/rand"

	"adaptivetc/internal/sched"
)

// Program counts the solutions of one Sudoku instance.
type Program struct {
	k, n    int
	label   string
	givens  []uint8 // n*n board, 0 = empty
	empties []int   // cell indices filled by the search, in row-major order
}

// New builds an instance from a board of side n=k² with 0 for empty cells.
func New(k int, board []uint8, label string) *Program {
	n := k * k
	if len(board) != n*n {
		panic(fmt.Sprintf("sudoku: board has %d cells, want %d", len(board), n*n))
	}
	p := &Program{k: k, n: n, label: label, givens: append([]uint8(nil), board...)}
	for i, v := range board {
		if v == 0 {
			p.empties = append(p.empties, i)
		}
		if int(v) > n {
			panic(fmt.Sprintf("sudoku: cell %d holds %d, board side is %d", i, v, n))
		}
	}
	if !validGivens(k, board) {
		panic("sudoku: givens conflict: " + label)
	}
	return p
}

// Empty returns the blank k²×k² grid.
func Empty(k int) *Program {
	return New(k, make([]uint8, k*k*k*k), fmt.Sprintf("empty%d", k*k))
}

// Base returns the canonical solved grid b(r,c) = (k·(r mod k) + ⌊r/k⌋ + c) mod n.
func Base(k int) []uint8 {
	n := k * k
	b := make([]uint8, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			b[r*n+c] = uint8((k*(r%k)+r/k+c)%n) + 1
		}
	}
	return b
}

// Carved deletes `removed` cells from the canonical solved grid. When
// frontBias is true the deletions concentrate on the low row-major indices,
// spreading the branching across the shallow levels (a bushy, balanced
// tree); uniform deletions leave the early cells heavily constrained and
// grow the heavy-path trees of Figures 8–10.
func Carved(k, removed int, seed int64, frontBias bool, label string) *Program {
	n := k * k
	cells := n * n
	if removed > cells {
		removed = cells
	}
	board := Base(k)
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(cells)
	if frontBias {
		// Three quarters of the deletions come from the front half of the
		// board (where the solver starts), the rest from the back: the
		// branching then concentrates at the shallow levels of the search
		// tree, giving the Figure 8 style of imbalance. Which cells within
		// each half are removed still depends on the seed.
		var front, back []int
		for _, i := range order {
			if i < cells/2 {
				front = append(front, i)
			} else {
				back = append(back, i)
			}
		}
		nFront := removed * 3 / 4
		if nFront > len(front) {
			nFront = len(front)
		}
		nBack := removed - nFront
		if nBack > len(back) {
			nBack = len(back)
		}
		order = append(append([]int(nil), front[:nFront]...), back[:nBack]...)
		order = order[:nFront+nBack]
	} else {
		order = order[:removed]
	}
	for _, i := range order {
		board[i] = 0
	}
	return New(k, board, label)
}

// Balanced is the paper's input_balance stand-in: front-loaded deletions
// giving a comparatively even, bushy search tree.
func Balanced(k, removed int) *Program {
	return Carved(k, removed, 12345, true, fmt.Sprintf("balanced(%d)", removed))
}

// Input1 is the stand-in for the paper's unbalanced input1 (Figure 8):
// uniform deletions produce a heavy-path tree.
func Input1(k, removed int) *Program {
	return Carved(k, removed, 777, false, fmt.Sprintf("input1(%d)", removed))
}

// Input2 is the stand-in for the paper's unbalanced input2.
func Input2(k, removed int) *Program {
	return Carved(k, removed, 99991, false, fmt.Sprintf("input2(%d)", removed))
}

// Name implements sched.Program.
func (p *Program) Name() string { return "sudoku-" + p.label }

// EmptyCells returns how many cells the search fills (the tree depth).
func (p *Program) EmptyCells() int { return len(p.empties) }

func validGivens(k int, board []uint8) bool {
	n := k * k
	var row, col, box [][]bool
	for i := 0; i < n; i++ {
		row = append(row, make([]bool, n+1))
		col = append(col, make([]bool, n+1))
		box = append(box, make([]bool, n+1))
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			v := board[r*n+c]
			if v == 0 {
				continue
			}
			b := (r/k)*k + c/k
			if row[r][v] || col[c][v] || box[b][v] {
				return false
			}
			row[r][v], col[c][v], box[b][v] = true, true, true
		}
	}
	return true
}

// ws is the taskprivate workspace: the Status_t of Appendix A.
type ws struct {
	k, n  int
	board []uint8
	row   []uint32 // bit d set = digit d+1 used in the row
	col   []uint32
	box   []uint32
}

// Clone implements sched.Workspace.
func (w *ws) Clone() sched.Workspace {
	return &ws{
		k: w.k, n: w.n,
		board: append([]uint8(nil), w.board...),
		row:   append([]uint32(nil), w.row...),
		col:   append([]uint32(nil), w.col...),
		box:   append([]uint32(nil), w.box...),
	}
}

// Bytes implements sched.Workspace: board plus masks, the analogue of
// sizeof(Status_t).
func (w *ws) Bytes() int { return len(w.board) + 4*(len(w.row)+len(w.col)+len(w.box)) }

// CopyFrom implements sched.Reusable.
func (w *ws) CopyFrom(src sched.Workspace) {
	s := src.(*ws)
	w.k, w.n = s.k, s.n
	copy(w.board, s.board)
	copy(w.row, s.row)
	copy(w.col, s.col)
	copy(w.box, s.box)
}

// Root implements sched.Program.
func (p *Program) Root() sched.Workspace {
	w := &ws{
		k: p.k, n: p.n,
		board: append([]uint8(nil), p.givens...),
		row:   make([]uint32, p.n),
		col:   make([]uint32, p.n),
		box:   make([]uint32, p.n),
	}
	for r := 0; r < p.n; r++ {
		for c := 0; c < p.n; c++ {
			if v := w.board[r*p.n+c]; v != 0 {
				bit := uint32(1) << (v - 1)
				w.row[r] |= bit
				w.col[c] |= bit
				w.box[(r/p.k)*p.k+c/p.k] |= bit
			}
		}
	}
	return w
}

// Terminal implements sched.Program: every empty cell filled is a solution.
func (p *Program) Terminal(w sched.Workspace, depth int) (int64, bool) {
	if depth == len(p.empties) {
		return 1, true
	}
	return 0, false
}

// Moves implements sched.Program: the n candidate digits.
func (p *Program) Moves(w sched.Workspace, depth int) int { return p.n }

// Apply implements sched.Program: put digit m+1 into the depth-th empty
// cell if rows, columns and boxes allow.
func (p *Program) Apply(w sched.Workspace, depth, m int) bool {
	s := w.(*ws)
	cell := p.empties[depth]
	r, c := cell/p.n, cell%p.n
	b := (r/p.k)*p.k + c/p.k
	bit := uint32(1) << m
	if s.row[r]&bit != 0 || s.col[c]&bit != 0 || s.box[b]&bit != 0 {
		return false
	}
	s.board[cell] = uint8(m + 1)
	s.row[r] |= bit
	s.col[c] |= bit
	s.box[b] |= bit
	return true
}

// Undo implements sched.Program.
func (p *Program) Undo(w sched.Workspace, depth, m int) {
	s := w.(*ws)
	cell := p.empties[depth]
	r, c := cell/p.n, cell%p.n
	b := (r/p.k)*p.k + c/p.k
	bit := uint32(1) << m
	s.board[cell] = 0
	s.row[r] &^= bit
	s.col[c] &^= bit
	s.box[b] &^= bit
}
