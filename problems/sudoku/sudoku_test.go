package sudoku

import (
	"testing"

	"adaptivetc/internal/progtest"
	"adaptivetc/internal/sched"
)

func countSerial(t *testing.T, p *Program) int64 {
	t.Helper()
	res, err := sched.Serial{}.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Value
}

// TestShidoku288 is the classical absolute oracle: the empty 4×4 grid has
// exactly 288 completions.
func TestShidoku288(t *testing.T) {
	if got := countSerial(t, Empty(2)); got != 288 {
		t.Fatalf("empty shidoku solutions = %d, want 288", got)
	}
}

func TestBaseGridValid(t *testing.T) {
	for _, k := range []int{2, 3} {
		b := Base(k)
		if !validGivens(k, b) {
			t.Fatalf("base grid k=%d invalid", k)
		}
		p := New(k, b, "full")
		if got := countSerial(t, p); got != 1 {
			t.Fatalf("full base grid k=%d has %d solutions, want 1", k, got)
		}
	}
}

func TestSingleHoleHasOneSolution(t *testing.T) {
	b := Base(3)
	b[40] = 0
	if got := countSerial(t, New(3, b, "hole")); got != 1 {
		t.Fatalf("one-hole grid has %d solutions, want 1", got)
	}
}

// naive brute force over a 4×4 board, independent of the Program machinery.
func naiveShidoku(board []uint8) int64 {
	legal := func(cell int, v uint8) bool {
		r, c := cell/4, cell%4
		for i := 0; i < 4; i++ {
			if board[r*4+i] == v || board[i*4+c] == v {
				return false
			}
		}
		br, bc := (r/2)*2, (c/2)*2
		for dr := 0; dr < 2; dr++ {
			for dc := 0; dc < 2; dc++ {
				if board[(br+dr)*4+bc+dc] == v {
					return false
				}
			}
		}
		return true
	}
	var rec func(cell int) int64
	rec = func(cell int) int64 {
		for ; cell < 16 && board[cell] != 0; cell++ {
		}
		if cell == 16 {
			return 1
		}
		var sum int64
		for v := uint8(1); v <= 4; v++ {
			if legal(cell, v) {
				board[cell] = v
				sum += rec(cell + 1)
				board[cell] = 0
			}
		}
		return sum
	}
	return rec(0)
}

func TestCarvedAgainstNaive(t *testing.T) {
	for _, removed := range []int{4, 8, 12, 16} {
		p := Carved(2, removed, 42, false, "t")
		board := append([]uint8(nil), p.givens...)
		want := naiveShidoku(board)
		if got := countSerial(t, p); got != want {
			t.Errorf("carved(2,%d): got %d, naive says %d", removed, got, want)
		}
	}
}

func TestCarvedDeterministic(t *testing.T) {
	a := Carved(3, 40, 7, true, "a")
	b := Carved(3, 40, 7, true, "b")
	for i := range a.givens {
		if a.givens[i] != b.givens[i] {
			t.Fatal("same seed produced different boards")
		}
	}
	c := Carved(3, 40, 8, true, "c")
	same := true
	for i := range a.givens {
		if a.givens[i] != c.givens[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical boards")
	}
}

func TestUnbalancedInputsDiffer(t *testing.T) {
	in1 := sched.Analyze(Input1(3, 52), 1e6)
	in2 := sched.Analyze(Input2(3, 52), 1e6)
	t.Logf("input1: %v", in1)
	t.Logf("input2: %v", in2)
	if in1.Truncated || in2.Truncated {
		t.Fatal("analysis truncated; shrink the instances")
	}
	if in1.Nodes < 1000 || in2.Nodes < 1000 {
		t.Fatalf("unbalanced inputs too small: %d / %d nodes", in1.Nodes, in2.Nodes)
	}
	if in1.Nodes == in2.Nodes && len(in1.Depth1) == len(in2.Depth1) {
		same := true
		for i := range in1.Depth1 {
			if in1.Depth1[i] != in2.Depth1[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("input1 and input2 generated the same tree")
		}
	}
	// Both must be visibly unbalanced: the largest depth-1 subtree holds
	// well over its fair share of the tree.
	for _, st := range []sched.TreeStats{in1, in2} {
		var maxShare float64
		for _, p := range st.Depth1Percent() {
			if p > maxShare {
				maxShare = p
			}
		}
		fair := 100.0 / float64(len(st.Depth1))
		if maxShare < 1.3*fair {
			t.Errorf("%s: max depth-1 share %.1f%% vs fair %.1f%% — not unbalanced", st.Program, maxShare, fair)
		}
	}
}

func TestWorkspaceRoundTrip(t *testing.T) {
	p := Empty(2)
	ws := p.Root()
	if !p.Apply(ws, 0, 0) {
		t.Fatal("move refused")
	}
	clone := ws.Clone()
	p.Undo(ws, 0, 0)
	// The clone still holds the digit, the original does not.
	if p.Apply(clone, 0, 0) {
		p.Undo(clone, 0, 0)
		t.Fatal("clone lost the applied digit")
	}
	if !p.Apply(ws, 0, 0) {
		t.Fatal("undo did not free the cell")
	}
}

func TestRejectsConflictingGivens(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on conflicting givens")
		}
	}()
	b := make([]uint8, 16)
	b[0], b[1] = 1, 1 // same row
	New(2, b, "bad")
}

func TestConformance(t *testing.T) {
	progtest.Conformance(t, Empty(2))
	progtest.Conformance(t, Balanced(2, 9))
}
