// Package pentomino is the paper's Pentomino(n) benchmark: tile a rectangle
// with n distinct pentominoes, counting all complete tilings. The search
// always extends the first empty cell in row-major order, branching over
// (piece, orientation) pairs whose anchor cell lands there — the classic
// exact-cover backtracking whose workspace (board occupancy + used-piece
// set) is taskprivate.
package pentomino

import (
	"fmt"
	"sort"

	"adaptivetc/internal/sched"
)

// cell is a (row, col) offset relative to a piece's anchor.
type cell struct{ r, c int }

// pieceNames orders the canonical 12 pentominoes.
const pieceNames = "FILNPTUVWXYZ"

var baseShapes = map[byte][]cell{
	'F': {{0, 1}, {0, 2}, {1, 0}, {1, 1}, {2, 1}},
	'I': {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}},
	'L': {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {3, 1}},
	'N': {{0, 0}, {1, 0}, {1, 1}, {2, 1}, {3, 1}},
	'P': {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}},
	'T': {{0, 0}, {0, 1}, {0, 2}, {1, 1}, {2, 1}},
	'U': {{0, 0}, {0, 2}, {1, 0}, {1, 1}, {1, 2}},
	'V': {{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}},
	'W': {{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}},
	'X': {{0, 1}, {1, 0}, {1, 1}, {1, 2}, {2, 1}},
	'Y': {{0, 1}, {1, 0}, {1, 1}, {2, 1}, {3, 1}},
	'Z': {{0, 0}, {0, 1}, {1, 1}, {2, 1}, {2, 2}},
}

// maxOrients bounds the orientations of any piece (8 = 4 rotations × 2
// reflections); move m encodes piece m/8 and orientation m%8.
const maxOrients = 8

// normalize sorts cells row-major and rebases them on the first cell, so an
// orientation can be anchored at the board's first empty cell.
func normalize(cs []cell) []cell {
	out := append([]cell(nil), cs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].r != out[j].r {
			return out[i].r < out[j].r
		}
		return out[i].c < out[j].c
	})
	r0, c0 := out[0].r, out[0].c
	for i := range out {
		out[i].r -= r0
		out[i].c -= c0
	}
	return out
}

func rotate(cs []cell) []cell {
	out := make([]cell, len(cs))
	for i, c := range cs {
		out[i] = cell{c.c, -c.r}
	}
	return out
}

func reflect(cs []cell) []cell {
	out := make([]cell, len(cs))
	for i, c := range cs {
		out[i] = cell{c.r, -c.c}
	}
	return out
}

func key(cs []cell) string {
	s := ""
	for _, c := range cs {
		s += fmt.Sprintf("%d,%d;", c.r, c.c)
	}
	return s
}

// orientations returns the distinct normalized orientations of a shape.
func orientations(shape []cell) [][]cell {
	seen := map[string]bool{}
	var out [][]cell
	cur := shape
	for flip := 0; flip < 2; flip++ {
		for rot := 0; rot < 4; rot++ {
			n := normalize(cur)
			if k := key(n); !seen[k] {
				seen[k] = true
				out = append(out, n)
			}
			cur = rotate(cur)
		}
		cur = reflect(shape)
	}
	return out
}

// Program counts the tilings of a W×H rectangle by the given piece set.
type Program struct {
	W, H   int
	pieces []byte
	label  string
	shapes [][][]cell // shapes[p][o] = cell offsets
}

// New returns the paper's Pentomino(n): the first n canonical pieces on a
// rectangle of area 5n (6×10 for the full set of 12).
func New(n int) *Program {
	if n < 1 || n > 12 {
		panic(fmt.Sprintf("pentomino: n=%d out of range [1,12]", n))
	}
	dims := map[int][2]int{
		1: {5, 1}, 2: {5, 2}, 3: {5, 3}, 4: {5, 4}, 5: {5, 5}, 6: {5, 6},
		7: {5, 7}, 8: {5, 8}, 9: {5, 9}, 10: {5, 10}, 11: {5, 11}, 12: {6, 10},
	}
	d := dims[n]
	return NewBoard(d[0], d[1], pieceNames[:n], fmt.Sprintf("pentomino(%d)", n))
}

// NewBoard returns a tiling instance on a W×H board with the named pieces
// (a subset of "FILNPTUVWXYZ"; 5×len(pieces) must equal W*H).
func NewBoard(w, h int, pieces string, label string) *Program {
	if 5*len(pieces) != w*h {
		panic(fmt.Sprintf("pentomino: %d pieces cannot tile a %dx%d board", len(pieces), w, h))
	}
	p := &Program{W: w, H: h, pieces: []byte(pieces), label: label}
	for _, name := range p.pieces {
		shape, ok := baseShapes[name]
		if !ok {
			panic(fmt.Sprintf("pentomino: unknown piece %q", name))
		}
		p.shapes = append(p.shapes, orientations(shape))
	}
	return p
}

// Name implements sched.Program.
func (p *Program) Name() string { return p.label }

type placement struct {
	anchor int
	m      int
}

type ws struct {
	w, h   int
	board  []bool
	used   uint16
	placed []placement
}

// Clone implements sched.Workspace.
func (s *ws) Clone() sched.Workspace {
	return &ws{
		w: s.w, h: s.h,
		board:  append([]bool(nil), s.board...),
		used:   s.used,
		placed: append([]placement(nil), s.placed...),
	}
}

// Bytes implements sched.Workspace.
func (s *ws) Bytes() int { return len(s.board) + 2 + 8*cap(s.placed) }

// CopyFrom implements sched.Reusable.
func (s *ws) CopyFrom(src sched.Workspace) {
	o := src.(*ws)
	s.w, s.h = o.w, o.h
	copy(s.board, o.board)
	s.used = o.used
	s.placed = append(s.placed[:0], o.placed...)
}

func (s *ws) firstEmpty() int {
	from := 0
	if n := len(s.placed); n > 0 {
		from = s.placed[n-1].anchor + 1
	}
	for i := from; i < len(s.board); i++ {
		if !s.board[i] {
			return i
		}
	}
	return -1
}

// Root implements sched.Program.
func (p *Program) Root() sched.Workspace {
	return &ws{w: p.W, h: p.H, board: make([]bool, p.W*p.H), placed: make([]placement, 0, len(p.pieces))}
}

// Terminal implements sched.Program: all pieces placed tiles the board.
func (p *Program) Terminal(w sched.Workspace, depth int) (int64, bool) {
	if depth == len(p.pieces) {
		return 1, true
	}
	return 0, false
}

// Moves implements sched.Program: every (piece, orientation) candidate.
func (p *Program) Moves(w sched.Workspace, depth int) int { return len(p.pieces) * maxOrients }

// Apply implements sched.Program: anchor the candidate at the first empty
// cell if the piece is unused and all five cells fit.
func (p *Program) Apply(w sched.Workspace, depth, m int) bool {
	s := w.(*ws)
	piece, orient := m/maxOrients, m%maxOrients
	if s.used&(1<<piece) != 0 || orient >= len(p.shapes[piece]) {
		return false
	}
	anchor := s.firstEmpty()
	if anchor < 0 {
		return false
	}
	ar, ac := anchor/p.W, anchor%p.W
	shape := p.shapes[piece][orient]
	for _, c := range shape {
		r, cc := ar+c.r, ac+c.c
		if r < 0 || r >= p.H || cc < 0 || cc >= p.W || s.board[r*p.W+cc] {
			return false
		}
	}
	for _, c := range shape {
		s.board[(ar+c.r)*p.W+ac+c.c] = true
	}
	s.used |= 1 << piece
	s.placed = append(s.placed, placement{anchor: anchor, m: m})
	return true
}

// Undo implements sched.Program.
func (p *Program) Undo(w sched.Workspace, depth, m int) {
	s := w.(*ws)
	pl := s.placed[len(s.placed)-1]
	s.placed = s.placed[:len(s.placed)-1]
	piece, orient := pl.m/maxOrients, pl.m%maxOrients
	ar, ac := pl.anchor/p.W, pl.anchor%p.W
	for _, c := range p.shapes[piece][orient] {
		s.board[(ar+c.r)*p.W+ac+c.c] = false
	}
	s.used &^= 1 << piece
}
