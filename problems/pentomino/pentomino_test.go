package pentomino

import (
	"testing"

	"adaptivetc/internal/progtest"
	"adaptivetc/internal/sched"
)

func countSerial(t *testing.T, p *Program) int64 {
	t.Helper()
	res, err := sched.Serial{}.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Value
}

func TestOrientationCounts(t *testing.T) {
	want := map[byte]int{
		'F': 8, 'I': 2, 'L': 8, 'N': 8, 'P': 8, 'T': 4,
		'U': 4, 'V': 4, 'W': 4, 'X': 1, 'Y': 8, 'Z': 4,
	}
	for name, shape := range baseShapes {
		if got := len(orientations(shape)); got != want[name] {
			t.Errorf("piece %c has %d orientations, want %d", name, got, want[name])
		}
	}
}

func TestEveryPieceHasFiveCells(t *testing.T) {
	for name, shape := range baseShapes {
		if len(shape) != 5 {
			t.Errorf("piece %c has %d cells", name, len(shape))
		}
		for _, o := range orientations(shape) {
			if o[0].r != 0 || o[0].c != 0 {
				t.Errorf("piece %c orientation not anchored at origin: %v", name, o)
			}
			seen := map[cell]bool{}
			for _, c := range o {
				if seen[c] {
					t.Errorf("piece %c orientation has duplicate cell %v", name, c)
				}
				seen[c] = true
			}
		}
	}
}

// naive independently counts tilings via DFS on a cell grid.
func naive(p *Program) int64 {
	board := make([]bool, p.W*p.H)
	used := make([]bool, len(p.pieces))
	var rec func() int64
	rec = func() int64 {
		anchor := -1
		for i, b := range board {
			if !b {
				anchor = i
				break
			}
		}
		if anchor == -1 {
			return 1
		}
		ar, ac := anchor/p.W, anchor%p.W
		var sum int64
		for pi := range p.pieces {
			if used[pi] {
				continue
			}
			for _, shape := range p.shapes[pi] {
				ok := true
				for _, c := range shape {
					r, cc := ar+c.r, ac+c.c
					if r < 0 || r >= p.H || cc < 0 || cc >= p.W || board[r*p.W+cc] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				for _, c := range shape {
					board[(ar+c.r)*p.W+ac+c.c] = true
				}
				used[pi] = true
				sum += rec()
				used[pi] = false
				for _, c := range shape {
					board[(ar+c.r)*p.W+ac+c.c] = false
				}
			}
		}
		return sum
	}
	return rec()
}

func TestSmallBoardsAgainstNaive(t *testing.T) {
	cases := []struct {
		w, h   int
		pieces string
	}{
		{5, 1, "I"},
		{5, 2, "LP"},
		{5, 3, "LPU"},
		{5, 4, "LNPY"},
		{4, 5, "FTUV"},
		{5, 5, "FILPN"},
	}
	for _, c := range cases {
		p := NewBoard(c.w, c.h, c.pieces, "t")
		want := naive(p)
		got := countSerial(t, p)
		if got != want {
			t.Errorf("%dx%d %q = %d, naive says %d", c.w, c.h, c.pieces, got, want)
		}
		t.Logf("%dx%d %q: %d tilings", c.w, c.h, c.pieces, got)
	}
}

func TestTrivialCounts(t *testing.T) {
	// A 5×1 strip is tiled only by the I pentomino, in exactly one way.
	if got := countSerial(t, NewBoard(5, 1, "I", "strip")); got != 1 {
		t.Errorf("I on 5x1 = %d, want 1", got)
	}
	if got := countSerial(t, NewBoard(1, 5, "I", "column")); got != 1 {
		t.Errorf("I on 1x5 = %d, want 1", got)
	}
	// X can never tile anything on its own 5-cell cross-less rectangle.
	if got := countSerial(t, NewBoard(5, 1, "X", "impossible")); got != 0 {
		t.Errorf("X on 5x1 = %d, want 0", got)
	}
}

func TestCloneIsolation(t *testing.T) {
	p := NewBoard(5, 2, "LP", "t")
	ws := p.Root()
	m := -1
	for cand := 0; cand < p.Moves(ws, 0); cand++ {
		if p.Apply(ws, 0, cand) {
			m = cand
			break
		}
	}
	if m < 0 {
		t.Fatal("no legal first placement")
	}
	c := ws.Clone()
	p.Undo(ws, 0, m)
	if p.Apply(c, 0, m) {
		t.Fatal("clone shares the board with the original")
	}
}

func TestConformance(t *testing.T) {
	progtest.Conformance(t, NewBoard(5, 3, "LPU", "conf"))
}
