// Package knight is the paper's Knight's Tour benchmark: count the open
// knight's tours on an m×m chessboard starting from a given square — every
// square visited exactly once. The paper runs 6×6 (a multi-thousand-second
// computation in 2010 C); the harness defaults to 5×5 or 5×6 variants and
// scales up under -full.
package knight

import (
	"fmt"

	"adaptivetc/internal/sched"
)

var deltas = [8][2]int{
	{1, 2}, {2, 1}, {2, -1}, {1, -2},
	{-1, -2}, {-2, -1}, {-2, 1}, {-1, 2},
}

// Program counts open tours on a W×H board from (StartR, StartC).
type Program struct {
	W, H           int
	StartR, StartC int
}

// New returns the tour count program for an m×m board starting at (0,0).
func New(m int) *Program { return NewRect(m, m, 0, 0) }

// NewRect returns the tour count program for a W×H board from (r0, c0).
func NewRect(w, h, r0, c0 int) *Program {
	if w < 1 || h < 1 || r0 < 0 || r0 >= h || c0 < 0 || c0 >= w {
		panic(fmt.Sprintf("knight: invalid board %dx%d start (%d,%d)", w, h, r0, c0))
	}
	return &Program{W: w, H: h, StartR: r0, StartC: c0}
}

// Name implements sched.Program.
func (p *Program) Name() string {
	return fmt.Sprintf("knight(%dx%d@%d,%d)", p.W, p.H, p.StartR, p.StartC)
}

type ws struct {
	w, h    int
	visited []bool
	path    []int16 // cell indices, path[0] is the start
}

// Clone implements sched.Workspace.
func (s *ws) Clone() sched.Workspace {
	return &ws{
		w: s.w, h: s.h,
		visited: append([]bool(nil), s.visited...),
		path:    append([]int16(nil), s.path...),
	}
}

// Bytes implements sched.Workspace: the board occupancy plus the path —
// the tour's chessboard workspace.
func (s *ws) Bytes() int { return len(s.visited) + 2*cap(s.path) }

// CopyFrom implements sched.Reusable.
func (s *ws) CopyFrom(src sched.Workspace) {
	o := src.(*ws)
	s.w, s.h = o.w, o.h
	copy(s.visited, o.visited)
	s.path = append(s.path[:0], o.path...)
}

// Root implements sched.Program.
func (p *Program) Root() sched.Workspace {
	s := &ws{
		w: p.W, h: p.H,
		visited: make([]bool, p.W*p.H),
		path:    make([]int16, 1, p.W*p.H),
	}
	start := p.StartR*p.W + p.StartC
	s.visited[start] = true
	s.path[0] = int16(start)
	return s
}

// Terminal implements sched.Program: a tour is complete after W*H-1 moves.
func (p *Program) Terminal(w sched.Workspace, depth int) (int64, bool) {
	if depth == p.W*p.H-1 {
		return 1, true
	}
	return 0, false
}

// Moves implements sched.Program: the 8 knight moves.
func (p *Program) Moves(w sched.Workspace, depth int) int { return 8 }

// Apply implements sched.Program.
func (p *Program) Apply(w sched.Workspace, depth, m int) bool {
	s := w.(*ws)
	cur := int(s.path[len(s.path)-1])
	r := cur/s.w + deltas[m][0]
	c := cur%s.w + deltas[m][1]
	if r < 0 || r >= s.h || c < 0 || c >= s.w {
		return false
	}
	cell := r*s.w + c
	if s.visited[cell] {
		return false
	}
	s.visited[cell] = true
	s.path = append(s.path, int16(cell))
	return true
}

// Undo implements sched.Program.
func (p *Program) Undo(w sched.Workspace, depth, m int) {
	s := w.(*ws)
	cell := s.path[len(s.path)-1]
	s.visited[cell] = false
	s.path = s.path[:len(s.path)-1]
}
