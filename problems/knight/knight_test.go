package knight

import (
	"testing"

	"adaptivetc/internal/progtest"
	"adaptivetc/internal/sched"
)

func countSerial(t *testing.T, p *Program) int64 {
	t.Helper()
	res, err := sched.Serial{}.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Value
}

// naive is an independent DFS tour counter.
func naive(w, h, r0, c0 int) int64 {
	visited := make([]bool, w*h)
	visited[r0*w+c0] = true
	var rec func(r, c, left int) int64
	rec = func(r, c, left int) int64 {
		if left == 0 {
			return 1
		}
		var sum int64
		for _, d := range deltas {
			nr, nc := r+d[0], c+d[1]
			if nr < 0 || nr >= h || nc < 0 || nc >= w || visited[nr*w+nc] {
				continue
			}
			visited[nr*w+nc] = true
			sum += rec(nr, nc, left-1)
			visited[nr*w+nc] = false
		}
		return sum
	}
	return rec(r0, c0, w*h-1)
}

func TestSmallBoards(t *testing.T) {
	cases := []struct{ w, h, r0, c0 int }{
		{3, 3, 0, 0}, // no tour: the centre is unreachable
		{4, 3, 0, 0},
		{4, 4, 0, 0}, // classically zero tours on 4×4
		{5, 4, 0, 0},
		{5, 5, 0, 0},
		{5, 5, 2, 2},
	}
	for _, c := range cases {
		p := NewRect(c.w, c.h, c.r0, c.c0)
		want := naive(c.w, c.h, c.r0, c.c0)
		if got := countSerial(t, p); got != want {
			t.Errorf("%s = %d, naive says %d", p.Name(), got, want)
		}
	}
}

func TestKnownZeroBoards(t *testing.T) {
	if got := countSerial(t, New(4)); got != 0 {
		t.Errorf("4x4 tours = %d, want 0 (classical result)", got)
	}
	if got := countSerial(t, New(3)); got != 0 {
		t.Errorf("3x3 tours = %d, want 0 (centre unreachable)", got)
	}
}

func TestTourSymmetry(t *testing.T) {
	// By the board's diagonal symmetry, tours from (0,0) on a square board
	// equal tours from (0,0) with transposed moves — i.e. the count must be
	// invariant under swapping the start coordinates.
	a := countSerial(t, NewRect(5, 5, 1, 0))
	b := countSerial(t, NewRect(5, 5, 0, 1))
	if a != b {
		t.Errorf("asymmetric counts: (1,0)=%d vs (0,1)=%d", a, b)
	}
}

func TestCloneIsolation(t *testing.T) {
	p := New(5)
	root := p.Root()
	if !p.Apply(root, 0, 0) {
		t.Fatal("move refused")
	}
	c := root.Clone().(*ws)
	p.Undo(root, 0, 0)
	// The undo on the original must not disturb the clone's state.
	if len(c.path) != 2 {
		t.Fatalf("clone path length %d, want 2", len(c.path))
	}
	if !c.visited[c.path[1]] {
		t.Fatal("undo on the original cleared the clone's visited board")
	}
	if len(root.(*ws).path) != 1 {
		t.Fatal("undo failed on the original")
	}
}

func TestConformance(t *testing.T) {
	progtest.Conformance(t, NewRect(4, 5, 0, 0))
}
