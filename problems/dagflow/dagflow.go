// Package dagflow is the dataflow-DAG workload family: task graphs whose
// nodes have cross-spawn dependencies, the shape divide-and-conquer search
// cannot express. A node may depend on several predecessors that live in
// different subtrees of the spawn tree, so "spawn when your parent runs" is
// not enough — the family implements a dependency-counting ready layer on
// top of the unchanged sched.Program contract.
//
// # Mapping a DAG onto the spawn-tree model
//
// Every engine in this repository evaluates Value = Σ over leaves of the
// spawn tree. A DAG run must produce an order-independent value while the
// spawn tree's shape depends on execution order (whichever predecessor
// finishes last adopts the successor). The mapping:
//
//   - Each DAG node u contributes exactly one "emit" leaf carrying
//     score(u), so Value = Σ_u score(u) regardless of which execution
//     order the scheduler chose.
//   - A tree node for u has 1+len(succ(u)) candidate moves: move 0 is the
//     emit leaf, move 1+i targets successor i. Applying a successor move
//     atomically decrements the successor's pending-predecessor counter
//     and is legal — returns true — only for the decrement that reaches
//     zero. The last predecessor to finish therefore claims the successor
//     into its own subtree; every other predecessor sees an "illegal move",
//     exactly like a blocked square in n-queens.
//   - The root pseudo-node's moves claim the DAG's source nodes (their
//     pending counters are preset to 1).
//
// The decrement is the one deliberate bend of the Program contract: Apply
// documents "when it returns false it must leave ws unchanged", and the
// workspace *is* unchanged — but the claim decrement lands in shared
// per-run state and is monotone, never reverted (Undo pops only the local
// path). That is sound for every engine built on the verified
// apply-exactly-once discipline (each legal-or-not candidate move of an
// executing node is applied exactly once); Tascell reconstructs stolen
// workspaces by re-applying moves and is therefore excluded from this
// family, as are any engines with re-execution semantics.
//
// Per-run state (pending counters, claim stamps, audit counters) is
// allocated fresh by each Root() call — every engine and the serial oracle
// call Root exactly once per run — so one Program instance can be reused
// across sequential runs, and concurrent runs each get their own state.
//
// The claim stamps double as a topological-order witness: stamps are drawn
// from one atomic counter at claim time, a successor is claimed only by the
// predecessor whose decrement reached zero (i.e. after every predecessor
// started executing), so stamp(u) < stamp(v) must hold for every edge u→v.
// FuzzDAG asserts exactly that, plus claims==1 and emits==1 per node.
package dagflow

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"adaptivetc/internal/sched"
)

// graph is the immutable DAG: nodes 0..V-1 in topological order.
type graph struct {
	preds   [][]int32
	succs   [][]int32
	scores  []int64
	sources []int32
}

// runState is the mutable dependency-counting layer of one run.
type runState struct {
	// pending[v] counts predecessors not yet finished; sources start at 1
	// (claimed by the root pseudo-node). The decrement that reaches zero
	// claims v.
	pending []atomic.Int32
	// claims[v] audits how many times v was claimed (must end at 1).
	claims []atomic.Int32
	// emits[v] audits how many emit leaves v produced (must end at 1).
	emits []atomic.Int32
	// stamp[v] is v's claim order, drawn from seq — the topological
	// witness. Written once, by v's single claimer.
	stamp []int64
	seq   atomic.Int64
}

func newRunState(g *graph) *runState {
	n := len(g.scores)
	rs := &runState{
		pending: make([]atomic.Int32, n),
		claims:  make([]atomic.Int32, n),
		emits:   make([]atomic.Int32, n),
		stamp:   make([]int64, n),
	}
	for v := range g.preds {
		if len(g.preds[v]) == 0 {
			rs.pending[v].Store(1)
		} else {
			rs.pending[v].Store(int32(len(g.preds[v])))
		}
	}
	return rs
}

// claim decrements v's pending counter and reports whether this caller won
// v (the decrement that reached zero). The winner stamps v's claim order.
func (rs *runState) claim(v int32) bool {
	if rs.pending[v].Add(-1) != 0 {
		return false
	}
	rs.claims[v].Add(1)
	rs.stamp[v] = rs.seq.Add(1)
	return true
}

// frame is one entry of a workspace's local path: the DAG node it stands
// on, and whether it is the node's emit leaf.
type frame struct {
	node int32
	emit bool
}

const rootNode = -1

// ws is the task-private workspace: the local path through the spawn tree.
// The graph and the run state are shared by every clone.
type ws struct {
	g     *graph
	rs    *runState
	stack []frame
}

func (w *ws) Clone() sched.Workspace {
	c := &ws{g: w.g, rs: w.rs, stack: make([]frame, len(w.stack))}
	copy(c.stack, w.stack)
	return c
}

func (w *ws) Bytes() int { return len(w.stack) * 8 }

// Program is a dataflow-DAG workload instance. Safe for reuse across
// sequential runs (each Root() call starts fresh run state) and for
// concurrent runs (each run reads only its own state through its
// workspaces).
type Program struct {
	g      *graph
	name   string
	lastRS atomic.Pointer[runState]
}

// Name implements sched.Program.
func (p *Program) Name() string { return p.name }

// Root implements sched.Program, allocating this run's dependency counters.
func (p *Program) Root() sched.Workspace {
	rs := newRunState(p.g)
	p.lastRS.Store(rs)
	return &ws{g: p.g, rs: rs, stack: []frame{{node: rootNode}}}
}

// Terminal implements sched.Program: only emit leaves are terminal.
func (p *Program) Terminal(w sched.Workspace, depth int) (int64, bool) {
	s := w.(*ws)
	top := s.stack[len(s.stack)-1]
	if top.emit {
		return s.g.scores[top.node], true
	}
	return 0, false
}

// Moves implements sched.Program.
func (p *Program) Moves(w sched.Workspace, depth int) int {
	s := w.(*ws)
	top := s.stack[len(s.stack)-1]
	if top.node == rootNode {
		return len(s.g.sources)
	}
	return 1 + len(s.g.succs[top.node])
}

// Apply implements sched.Program. Move 0 of a plain node is its emit leaf
// (always legal, applied exactly once per node execution — the audit
// counter rides it); successor moves are legal only for the claiming
// predecessor. The claim decrement mutates shared run state even when
// Apply returns false — see the package comment for why that is sound.
func (p *Program) Apply(w sched.Workspace, depth, m int) bool {
	s := w.(*ws)
	top := s.stack[len(s.stack)-1]
	if top.node == rootNode {
		src := s.g.sources[m]
		if !s.rs.claim(src) {
			return false
		}
		s.stack = append(s.stack, frame{node: src})
		return true
	}
	if m == 0 {
		s.rs.emits[top.node].Add(1)
		s.stack = append(s.stack, frame{node: top.node, emit: true})
		return true
	}
	succ := s.g.succs[top.node][m-1]
	if !s.rs.claim(succ) {
		return false
	}
	s.stack = append(s.stack, frame{node: succ})
	return true
}

// Undo implements sched.Program: it pops the local path only — claims and
// audit counters are monotone run progress and are never reverted.
func (p *Program) Undo(w sched.Workspace, depth, m int) {
	s := w.(*ws)
	s.stack = s.stack[:len(s.stack)-1]
}

// WantValue returns the value every correct run must produce: the sum of
// all node scores (each node emits exactly once).
func (p *Program) WantValue() int64 {
	var sum int64
	for _, sc := range p.g.scores {
		sum += sc
	}
	return sum
}

// Nodes returns the DAG's node count.
func (p *Program) Nodes() int { return len(p.g.scores) }

// Edges returns the DAG's edge list (u, v) with u before v topologically.
func (p *Program) Edges() [][2]int {
	var out [][2]int
	for u, ss := range p.g.succs {
		for _, v := range ss {
			out = append(out, [2]int{u, int(v)})
		}
	}
	return out
}

// Audit is the post-run view of the dependency-counting layer, for the
// exactly-once and topological-order assertions of FuzzDAG.
type Audit struct {
	// Claims[v] is how many times v was claimed; exactly 1 after a
	// complete run.
	Claims []int32
	// Emits[v] is how many emit leaves v produced; exactly 1 after a
	// complete run.
	Emits []int32
	// Stamps[v] is v's claim order (1-based). For every edge u→v,
	// Stamps[u] < Stamps[v].
	Stamps []int64
}

// LastRun snapshots the audit counters of the most recent Root() call, or
// nil if Root was never called. Meaningful once that run has completed;
// reuse the Program across concurrent runs and the snapshot describes
// whichever run called Root last.
func (p *Program) LastRun() *Audit {
	rs := p.lastRS.Load()
	if rs == nil {
		return nil
	}
	n := len(rs.stamp)
	a := &Audit{
		Claims: make([]int32, n),
		Emits:  make([]int32, n),
		Stamps: make([]int64, n),
	}
	for v := 0; v < n; v++ {
		a.Claims[v] = rs.claims[v].Load()
		a.Emits[v] = rs.emits[v].Load()
		a.Stamps[v] = rs.stamp[v]
	}
	return a
}

// finish freezes a graph under construction: derives preds, sources and
// validates the topological numbering.
func finish(name string, succs [][]int32, scores []int64) *Program {
	n := len(scores)
	g := &graph{succs: succs, scores: scores, preds: make([][]int32, n)}
	for u, ss := range succs {
		for _, v := range ss {
			if int(v) <= u || int(v) >= n {
				panic(fmt.Sprintf("dagflow: edge %d->%d breaks topological numbering (n=%d)", u, v, n))
			}
			g.preds[v] = append(g.preds[v], int32(u))
		}
	}
	for v := 0; v < n; v++ {
		if len(g.preds[v]) == 0 {
			g.sources = append(g.sources, int32(v))
		}
	}
	return &Program{g: g, name: name}
}

// NewLayered builds a seeded layered DAG: `layers` layers of `width` nodes,
// every node in layer i>0 depending on 1..3 distinct nodes of layer i-1.
// Scores are seeded small positives. layers and width are clamped to ≥1;
// node count is layers*width.
func NewLayered(layers, width int, seed int64) *Program {
	if layers < 1 {
		layers = 1
	}
	if width < 1 {
		width = 1
	}
	rng := rand.New(rand.NewSource(seed))
	n := layers * width
	succs := make([][]int32, n)
	scores := make([]int64, n)
	for v := 0; v < n; v++ {
		scores[v] = 1 + rng.Int63n(16)
	}
	id := func(layer, slot int) int32 { return int32(layer*width + slot) }
	for layer := 1; layer < layers; layer++ {
		for slot := 0; slot < width; slot++ {
			v := id(layer, slot)
			k := 1 + rng.Intn(3)
			if k > width {
				k = width
			}
			for _, pi := range rng.Perm(width)[:k] {
				u := id(layer-1, pi)
				succs[u] = append(succs[u], v)
			}
		}
	}
	return finish(fmt.Sprintf("dag-layered(L=%d,W=%d)", layers, width), succs, scores)
}

// NewStencil builds the classic wavefront DAG: a rows×cols grid where cell
// (i,j) depends on (i-1,j) and (i,j-1) — the single source is (0,0) and the
// ready frontier sweeps the anti-diagonals. Dimensions are clamped to ≥1.
func NewStencil(rows, cols int) *Program {
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	n := rows * cols
	succs := make([][]int32, n)
	scores := make([]int64, n)
	id := func(i, j int) int32 { return int32(i*cols + j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := id(i, j)
			scores[v] = int64((i*31+j*17)%13 + 1)
			if j+1 < cols {
				succs[v] = append(succs[v], id(i, j+1))
			}
			if i+1 < rows {
				succs[v] = append(succs[v], id(i+1, j))
			}
		}
	}
	return finish(fmt.Sprintf("dag-stencil(%dx%d)", rows, cols), succs, scores)
}

// NewFromEdges builds a DAG from explicit successor lists (node v's
// successors must all be numbered above v) — the fuzzing entry point.
// Scores must match the node count.
func NewFromEdges(name string, succs [][]int32, scores []int64) *Program {
	return finish(name, succs, scores)
}
