package adaptivetc_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"adaptivetc"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/trace"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/fib"
	"adaptivetc/problems/nqueens"
)

// Cooperative cancellation across every wsrt engine: a job cancelled
// mid-run must abort with the context's error, must not poison the runtime
// for a subsequent job, and its truncated trace must still satisfy every
// invariant that survives truncation (internal/trace.CheckTruncated).
//
// Tascell and Serial are absent from the engine table for the runtime
// test: Tascell does not observe Options.Ctx (own runtime, documented),
// and Serial is covered separately below.

// cancelAfter wraps a Program, firing cancel at the k-th Apply call and
// then stalling briefly so the context watcher's stop signal lands before
// the workers can finish the run — cancellation becomes deterministic in
// outcome without touching engine code.
type cancelAfter struct {
	adaptivetc.Program
	cancel context.CancelFunc
	k      int64
	calls  *atomic.Int64
}

func (c cancelAfter) Apply(ws adaptivetc.Workspace, depth, m int) bool {
	if c.calls.Add(1) == c.k {
		c.cancel()
		time.Sleep(20 * time.Millisecond) // let the watcher raise the stop flag
	}
	return c.Program.Apply(ws, depth, m)
}

// TestCancelMidRunAllEngines cancels a traced Sim run mid-flight for each
// of the seven wsrt engines, then reuses the engine for an un-cancelled
// run.
func TestCancelMidRunAllEngines(t *testing.T) {
	for _, te := range tracedEngines {
		t.Run(te.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var calls atomic.Int64
			prog := cancelAfter{Program: nqueens.NewArray(10), cancel: cancel, k: 200, calls: &calls}

			rec := trace.NewRecorder()
			defer rec.Release()
			opt := adaptivetc.Options{Workers: 4, Seed: 7, Ctx: ctx, Tracer: rec, GrowableDeque: true}
			_, err := te.mk().Run(prog, opt)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
			}
			if verr := rec.CheckTruncated(); verr != nil {
				t.Fatalf("truncated trace (%d events):\n%v", rec.EventCount(), verr)
			}

			// The engine value is reusable state: a fresh run must be clean.
			res, err := te.mk().Run(fib.New(12), adaptivetc.Options{Workers: 4, GrowableDeque: true})
			if err != nil || res.Value != 144 {
				t.Fatalf("run after cancel: value=%d err=%v, want 144", res.Value, err)
			}
		})
	}
}

// TestCancelMidRunReal is the Real-platform case: a resident pool job is
// cancelled mid-run and the same pool then serves a correct job — the
// deque reset between jobs must discard the aborted frames.
func TestCancelMidRunReal(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{Workers: 2, QueueCapacity: 4, Options: sched.Options{GrowableDeque: true}})
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	prog := cancelAfter{Program: nqueens.NewArray(12), cancel: cancel, k: 500, calls: &calls}

	rec := trace.NewRecorder()
	defer rec.Release()
	h, err := p.Submit(wsrt.JobSpec{Prog: prog, Engine: adaptivetc.NewAdaptiveTC().(wsrt.PoolEngine), Ctx: ctx, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pool job: err = %v, want context.Canceled", err)
	}
	if verr := rec.CheckTruncated(); verr != nil {
		t.Fatalf("truncated pool trace (%d events):\n%v", rec.EventCount(), verr)
	}

	h2, err := p.Submit(wsrt.JobSpec{Prog: nqueens.NewArray(8), Engine: adaptivetc.NewAdaptiveTC().(wsrt.PoolEngine)})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := h2.Result(); err != nil || res.Value != 92 {
		t.Fatalf("pool job after cancel: value=%d err=%v, want 92", res.Value, err)
	}
}

// TestCancelSerial covers the serial reference engine, which observes
// Options.Ctx in its recursive evaluator.
func TestCancelSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	prog := cancelAfter{Program: nqueens.NewArray(12), cancel: cancel, k: 100, calls: &calls}
	if _, err := adaptivetc.NewSerial().Run(prog, adaptivetc.Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled serial run: err = %v, want context.Canceled", err)
	}
}

// TestPreCancelledContext: a context already cancelled at submit aborts
// the run at the first poll point without doing meaningful work.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := adaptivetc.NewAdaptiveTC().Run(nqueens.NewArray(10), adaptivetc.Options{Workers: 2, Ctx: ctx, GrowableDeque: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Stats.Nodes > 2 {
		t.Fatalf("pre-cancelled run still visited %d nodes", res.Stats.Nodes)
	}
}
