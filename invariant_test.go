package adaptivetc_test

import (
	"math/rand"
	"testing"

	"adaptivetc"
	"adaptivetc/internal/trace"
	"adaptivetc/problems/nqueens"
)

// The schedule-stress harness: every wsrt-backed engine runs under the
// event tracer across randomized (seed, workers, cutoff) tuples, and each
// run's trace is replayed against the conservation laws of the THE
// protocol and the deposit protocol (internal/trace/invariant.go). A right
// answer is not enough — the run must also prove that every pushed frame
// was consumed exactly once, every deposit was owed, no special marker was
// ever stolen, and the need_task FSM followed Figure 3.
//
// Tascell is absent: it schedules by request/response over its own stacks,
// not through the wsrt deque runtime the tracer instruments. Serial has no
// scheduler to check.

// tracedEngines are the engines whose runs flow through wsrt.Run and are
// therefore observable by the tracer.
var tracedEngines = []struct {
	name string
	mk   func() adaptivetc.Engine
}{
	{"cilk", adaptivetc.NewCilk},
	{"cilk-synched", adaptivetc.NewCilkSynched},
	{"cutoff-programmer", adaptivetc.NewCutoffProgrammer},
	{"cutoff-library", adaptivetc.NewCutoffLibrary},
	{"adaptivetc", adaptivetc.NewAdaptiveTC},
	{"helpfirst", adaptivetc.NewHelpFirst},
	{"slaw", adaptivetc.NewSLAW},
}

// invariantOracle computes the serial reference value once.
func invariantOracle(t testing.TB, p adaptivetc.Program) int64 {
	t.Helper()
	res, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
	if err != nil {
		t.Fatalf("serial oracle: %v", err)
	}
	return res.Value
}

// runChecked executes one traced run and replays its invariants.
func runChecked(t *testing.T, rec *trace.Recorder, name string, e adaptivetc.Engine, p adaptivetc.Program, opt adaptivetc.Options, want int64) {
	t.Helper()
	opt.Tracer = rec
	res, err := e.Run(p, opt)
	if err != nil {
		t.Fatalf("%s workers=%d cutoff=%d seed=%d: run failed: %v",
			name, opt.Workers, opt.Cutoff, opt.Seed, err)
	}
	if err := rec.Check(res.Value, want); err != nil {
		t.Fatalf("%s workers=%d cutoff=%d seed=%d (%d events):\n%v",
			name, opt.Workers, opt.Cutoff, opt.Seed, rec.EventCount(), err)
	}
}

// TestInvariantStress drives all traced engines through >= 100 randomized
// deterministic-Sim tuples. The rand stream is fixed, so a failure here is
// exactly reproducible from the logged tuple.
func TestInvariantStress(t *testing.T) {
	p := nqueens.NewArray(6)
	want := invariantOracle(t, p)
	rec := trace.NewRecorder()
	defer rec.Release()
	rng := rand.New(rand.NewSource(20100424))
	const tuplesPerEngine = 16 // 7 engines x 16 = 112 checked runs
	for _, eng := range tracedEngines {
		e := eng.mk()
		for i := 0; i < tuplesPerEngine; i++ {
			opt := adaptivetc.Options{
				Workers:     1 + rng.Intn(8),
				Seed:        rng.Int63n(1 << 30),
				Cutoff:      rng.Intn(6),
				ForceCutoff: true,
			}
			runChecked(t, rec, eng.name, e, p, opt, want)
		}
	}
}

// TestInvariantStressReal repeats a smaller sweep on real goroutines,
// where steals interleave nondeterministically and the trace captures real
// cross-worker races. Run under -race in CI.
func TestInvariantStressReal(t *testing.T) {
	p := nqueens.NewArray(6)
	want := invariantOracle(t, p)
	rec := trace.NewRecorder()
	defer rec.Release()
	rng := rand.New(rand.NewSource(19101993))
	for _, eng := range tracedEngines {
		e := eng.mk()
		for i := 0; i < 3; i++ {
			seed := rng.Int63n(1 << 30)
			opt := adaptivetc.Options{
				Workers:     2 + rng.Intn(3),
				Seed:        seed,
				Cutoff:      rng.Intn(6),
				ForceCutoff: true,
				Platform:    adaptivetc.NewRealPlatform(seed),
			}
			runChecked(t, rec, eng.name, e, p, opt, want)
		}
	}
}

// FuzzInvariant lets the fuzzer pick the (seed, workers, cutoff) tuple,
// running every traced engine on the Real platform under the checker. The
// corpus entries double as regression anchors in plain `go test` runs.
func FuzzInvariant(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(0))
	f.Add(int64(7), uint8(4), uint8(3))
	f.Add(int64(42), uint8(8), uint8(5))
	f.Add(int64(1009), uint8(1), uint8(2))
	p := nqueens.NewArray(6)
	want := invariantOracle(f, p)
	f.Fuzz(func(t *testing.T, seed int64, workers, cutoff uint8) {
		rec := trace.NewRecorder()
		defer rec.Release()
		opt := adaptivetc.Options{
			Workers:     1 + int(workers%8),
			Seed:        seed,
			Cutoff:      int(cutoff % 6),
			ForceCutoff: true,
		}
		for _, eng := range tracedEngines {
			o := opt
			o.Platform = adaptivetc.NewRealPlatform(seed)
			runChecked(t, rec, eng.name, eng.mk(), p, o, want)
		}
	})
}
