package adaptivetc_test

import (
	"fmt"

	"adaptivetc"
	"adaptivetc/problems/fib"
	"adaptivetc/problems/nqueens"
	"adaptivetc/problems/synthtree"
)

// ExampleNewAdaptiveTC runs the paper's scheduler on 8-queens.
func ExampleNewAdaptiveTC() {
	prog := nqueens.NewArray(8)
	res, err := adaptivetc.NewAdaptiveTC().Run(prog, adaptivetc.Options{Workers: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Value, "solutions")
	// Output: 92 solutions
}

// ExampleEngine_comparison measures all three headline schedulers on the
// same instance; virtual makespans are deterministic given the seed.
func ExampleEngine_comparison() {
	prog := fib.New(18)
	serial, _ := adaptivetc.NewSerial().Run(prog, adaptivetc.Options{})
	for _, e := range []adaptivetc.Engine{
		adaptivetc.NewCilk(), adaptivetc.NewTascell(), adaptivetc.NewAdaptiveTC(),
	} {
		res, err := e.Run(prog, adaptivetc.Options{Workers: 8, Seed: 1})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: correct=%v\n", e.Name(), res.Value == serial.Value)
	}
	// Output:
	// cilk: correct=true
	// tascell: correct=true
	// adaptivetc: correct=true
}

// ExampleAnalyze inspects a search tree's shape without running a scheduler.
func ExampleAnalyze() {
	st := adaptivetc.Analyze(nqueens.NewArray(6), 0)
	fmt.Printf("nodes=%d leaves=%d depth=%d\n", st.Nodes, st.Leaves, st.Depth)
	// Output: nodes=153 leaves=50 depth=6
}

// ExampleLogCutoff shows AdaptiveTC's initial cutoff rule.
func ExampleLogCutoff() {
	for _, n := range []int{1, 2, 4, 8, 16} {
		fmt.Print(adaptivetc.LogCutoff(n), " ")
	}
	// Output: 0 1 2 3 4
}

// Example_unbalancedTree reproduces the Table 3 generator's determinism:
// a tree's value always equals its leaf count.
func Example_unbalancedTree() {
	spec := synthtree.Tree3(5000)
	res, err := adaptivetc.NewAdaptiveTC().Run(synthtree.New(spec), adaptivetc.Options{Workers: 8})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Value == spec.Size)
	// Output: true
}

// ExampleCompileATC compiles the paper's canonical taskprivate example —
// n-queens in the ATC mini-language — and runs it under AdaptiveTC.
func ExampleCompileATC() {
	prog, err := adaptivetc.CompileATC("queens", adaptivetc.ATCSources()["nqueens"],
		map[string]int64{"n": 8})
	if err != nil {
		panic(err)
	}
	res, err := adaptivetc.NewAdaptiveTC().Run(prog, adaptivetc.Options{Workers: 8})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Value, "solutions")
	// Output: 92 solutions
}
